"""Exact-vs-approximate tightness tables (the Lemma-2 gap, measured).

Algorithm 2's word-parallel classifier computes a *superset*
``LP^sup(σ^π)`` of the true criterion set by local implications; this
module measures how loose that approximation is on real circuits.  For
one circuit:

1. the classifier streams its accepted paths (``on_path`` — exactly
   the superset; every rejected path is *provably* outside the set, so
   only accepted paths need a SAT query);
2. the :class:`repro.verdict.VerdictOracle` decides true membership of
   each accepted path, replaying every SAT witness through simulation;
3. the row reports approximate vs. exact RD% — the gap is the number
   of classifier-accepted paths the SAT oracle refuted.

Rows are store-cached under the ``rdfp1:`` fingerprint (kind
``"tightness"``) with the never-wrong contract: any malformed or
inconsistent payload is a miss and recomputed.  The SAT queries fan
out over ``--jobs`` in path chunks; the deterministic table fields
(path counts, RD percentages, replay counts) are chunking-independent,
so :meth:`TightnessReport.table_bytes` is byte-identical at any job
count — solver-work diagnostics (conflicts/decisions/reuse), which do
depend on query order, live only in :meth:`TightnessRow.to_dict`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.errors import ClassifyError, VerdictError
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.obs import get_registry, span
from repro.paths.path import LogicalPath, PhysicalPath
from repro.util.serialize import to_json
from repro.util.tables import TextTable
from repro.verdict.oracle import DEFAULT_MAX_CONFLICTS, VerdictOracle

if TYPE_CHECKING:
    from repro.sorting.input_sort import InputSort

#: Store schema for cached tightness rows (bumped on layout changes).
TIGHTNESS_SCHEMA = 1

#: Default PI ceiling for the *suite sweep* only — it keeps the default
#: ``repro-rd tightness`` run aligned with the circuits whose verdicts
#: can be differential-checked against ``exact.exists_vector``.  The
#: oracle itself has no input-count limit.
DEFAULT_MAX_INPUTS = 20

#: Default cap on classifier-accepted paths per circuit — bounds the
#: number of SAT queries a sweep row may issue; circuits over the cap
#: get a structured SKIP row instead of an open-ended run.
DEFAULT_MAX_ACCEPTED = 50_000

#: Paths per fan-out chunk (each worker task rebuilds the circuit's
#: base encoding once, then decides its chunk incrementally).
CHUNK_SIZE = 512


@dataclass(frozen=True)
class TightnessRow:
    """One circuit's exact-vs-approximate verdict counts."""

    circuit: str
    criterion: str
    sort_label: str
    total_logical: int
    approx_accepted: int
    exact_accepted: int
    witness_replays: int
    conflicts: int = 0
    decisions: int = 0
    learned_reuse: int = 0
    elapsed: float = 0.0
    source: str = "computed"  #: "store" | "computed" | "skipped"
    skipped: str = ""  #: non-empty = reason this circuit was not decided

    @property
    def refuted(self) -> int:
        """Classifier-accepted paths the SAT oracle refuted (the gap)."""
        return self.approx_accepted - self.exact_accepted

    @property
    def approx_rd_percent(self) -> float:
        if self.total_logical == 0:
            return 0.0
        return 100.0 * (self.total_logical - self.approx_accepted) / self.total_logical

    @property
    def exact_rd_percent(self) -> float:
        if self.total_logical == 0:
            return 0.0
        return 100.0 * (self.total_logical - self.exact_accepted) / self.total_logical

    @property
    def gap_percent(self) -> float:
        """Exact minus approximate RD% — how much the paper's Algorithm 2
        under-reports (always >= 0 by soundness of the superset)."""
        return self.exact_rd_percent - self.approx_rd_percent

    def table_row(self) -> dict:
        """Deterministic fields only: byte-identical cold/warm and at
        any ``--jobs`` count (solver work and timing excluded)."""
        return {
            "circuit": self.circuit,
            "criterion": self.criterion,
            "sort": self.sort_label,
            "total_logical": self.total_logical,
            "approx_accepted": self.approx_accepted,
            "exact_accepted": self.exact_accepted,
            "refuted": self.refuted,
            "approx_rd_percent": self.approx_rd_percent,
            "exact_rd_percent": self.exact_rd_percent,
            "gap_percent": self.gap_percent,
            "witness_replays": self.witness_replays,
            "skipped": self.skipped,
        }

    def to_dict(self) -> dict:
        row = self.table_row()
        row["conflicts"] = self.conflicts
        row["decisions"] = self.decisions
        row["learned_reuse"] = self.learned_reuse
        row["elapsed"] = self.elapsed
        row["source"] = self.source
        return row


@dataclass(frozen=True)
class TightnessReport:
    """A tightness sweep over several circuits."""

    criterion: Criterion
    sort_label: str
    rows: "tuple[TightnessRow, ...]"
    wall_seconds: float = 0.0

    @property
    def decided_rows(self) -> "tuple[TightnessRow, ...]":
        return tuple(row for row in self.rows if not row.skipped)

    @property
    def total_refuted(self) -> int:
        return sum(row.refuted for row in self.decided_rows)

    @property
    def total_queries(self) -> int:
        return sum(row.approx_accepted for row in self.decided_rows)

    def table_payload(self) -> dict:
        """The deterministic table (see :meth:`TightnessRow.table_row`)."""
        return {
            "schema": TIGHTNESS_SCHEMA,
            "criterion": self.criterion.name,
            "sort": self.sort_label,
            "rows": [row.table_row() for row in self.rows],
            "circuits": len(self.rows),
            "decided": len(self.decided_rows),
            "refuted": self.total_refuted,
            "sat_queries": self.total_queries,
        }

    def table_bytes(self) -> bytes:
        return to_json(self.table_payload()).encode()

    def to_dict(self) -> dict:
        payload = self.table_payload()
        payload["rows"] = [row.to_dict() for row in self.rows]
        payload["wall_seconds"] = self.wall_seconds
        return payload

    def render(self) -> str:
        table = TextTable(
            [
                "circuit",
                "|LP|",
                "approx acc",
                "exact acc",
                "refuted",
                "approx RD%",
                "exact RD%",
                "gap",
                "note",
            ],
            title=(
                f"Lemma-2 tightness — exact vs. approximate RD% "
                f"({self.criterion.name}, sort={self.sort_label})"
            ),
        )
        for row in self.rows:
            if row.skipped:
                table.add_row(
                    [row.circuit, row.total_logical or "-", "-", "-", "-",
                     "-", "-", "-", f"SKIP: {row.skipped}"]
                )
            else:
                table.add_row(
                    [
                        row.circuit,
                        row.total_logical,
                        row.approx_accepted,
                        row.exact_accepted,
                        row.refuted,
                        f"{row.approx_rd_percent:.2f}",
                        f"{row.exact_rd_percent:.2f}",
                        f"{row.gap_percent:+.2f}",
                        row.source,
                    ]
                )
        return table.render()


# -- sort resolution ----------------------------------------------------
def resolve_sort(
    session: CircuitSession,
    criterion: Criterion,
    sort: "InputSort | str | None",
) -> "tuple[InputSort | None, str]":
    """``(sort object, label)`` from a symbolic name or explicit sort.

    FS/NR impose no π-order, so their queries always run sort-free.
    """
    from repro.sorting.input_sort import InputSort

    if criterion is not Criterion.SIGMA_PI:
        return None, "none"
    if isinstance(sort, InputSort):
        return sort, "custom"
    kind = sort or "heu2"
    if kind == "pin":
        return InputSort.pin_order(session.circuit), "pin"
    if kind == "heu1":
        return session.heuristic1_sort(), "heu1"
    if kind == "heu2":
        return session.heuristic2_sort(), "heu2"
    if kind == "heu2inv":
        return session.heuristic2_sort().inverted(), "heu2inv"
    raise ValueError(f"unknown sort {kind!r}; valid: pin, heu1, heu2, heu2inv")


# -- the per-chunk worker task (module-level: picklable) ----------------
def _verdict_chunk_task(payload):
    """Decide one chunk of paths; returns aggregate counts only (sums
    are order- and chunking-independent, keeping tables deterministic).
    """
    circuit, criterion_name, ranks, raw_paths, max_conflicts = payload
    from repro.sorting.input_sort import InputSort

    criterion = Criterion[criterion_name]
    sort = None if ranks is None else InputSort(circuit, ranks)
    oracle = VerdictOracle(circuit, max_conflicts=max_conflicts)
    sat = 0
    replays = 0
    for leads, final_value in raw_paths:
        lp = LogicalPath(PhysicalPath(tuple(leads)), final_value)
        verdict = oracle.decide(lp, criterion, sort)
        if verdict.in_set:
            sat += 1
            replays += 1
    stats = oracle.solver.stats
    return (sat, replays, stats.conflicts, stats.decisions, stats.learned_reuse)


# -- store plumbing -----------------------------------------------------
def _tightness_variant(session: CircuitSession, criterion: Criterion,
                       sort: "InputSort | None") -> str:
    sort_key = "none" if sort is None else session.canonical.sort_key(sort.ranks)
    return f"{criterion.name}|{sort_key}"


def _load_tightness_payload(payload: dict, max_accepted: "int | None"):
    """Strict never-wrong validation; anything off is a miss."""
    if payload.get("schema") != TIGHTNESS_SCHEMA:
        return None
    fields = ("total_logical", "approx_accepted", "exact_accepted", "replays")
    values = [payload.get(name) for name in fields]
    if not all(isinstance(v, int) and v >= 0 for v in values):
        return None
    total, approx, exact, replays = values
    if not exact <= approx <= total:
        return None
    if replays != exact:
        return None
    if max_accepted is not None and approx > max_accepted:
        # The cached row would have aborted under this caller's budget;
        # recompute so the budget semantics hold.
        return None
    return (total, approx, exact, replays)


# -- entry points -------------------------------------------------------
def tightness_row(
    circuit: Circuit,
    criterion: Criterion = Criterion.SIGMA_PI,
    sort: "InputSort | str | None" = "heu2",
    *,
    session: "CircuitSession | None" = None,
    store=None,
    runner: "TaskRunner | None" = None,
    max_accepted: "int | None" = None,
    max_conflicts: int = DEFAULT_MAX_CONFLICTS,
) -> TightnessRow:
    """Exact-vs-approximate verdict counts for one circuit.

    Raises :class:`ClassifyError` when the classifier accepts more than
    ``max_accepted`` paths (the sweep turns that into a SKIP row) and
    :class:`VerdictError` on any certificate failure.  ``circuit`` may
    be anything :func:`repro.loading.as_core` resolves (a
    ``ScanCircuit`` or ``.bench`` path included).
    """
    start = time.perf_counter()
    if not isinstance(circuit, Circuit):
        from repro.loading import as_core

        circuit = as_core(circuit)
    if session is None:
        session = CircuitSession(circuit, store=store)
    if runner is None:
        runner = TaskRunner(jobs=1)
    sort_obj, sort_label = resolve_sort(session, criterion, sort)
    variant = _tightness_variant(session, criterion, sort_obj)

    def make_row(total, approx, exact, replays, counters, source):
        conflicts, decisions, reuse = counters
        return TightnessRow(
            circuit=circuit.name,
            criterion=criterion.name,
            sort_label=sort_label,
            total_logical=total,
            approx_accepted=approx,
            exact_accepted=exact,
            witness_replays=replays,
            conflicts=conflicts,
            decisions=decisions,
            learned_reuse=reuse,
            elapsed=time.perf_counter() - start,
            source=source,
        )

    cached = session._store_get(  # noqa: SLF001 - session store plumbing
        "tightness",
        variant,
        lambda payload: _load_tightness_payload(payload, max_accepted),
    )
    if cached is not None:
        get_registry().counter("verdict.row_store_hits").inc()
        return make_row(*cached, (0, 0, 0), "store")

    with span("verdict.tightness", circuit=circuit.name,
              criterion=criterion.name):
        accepted: "list[tuple[tuple[int, ...], int]]" = []
        result = session.classify(
            criterion,
            sort=sort_obj,
            max_accepted=max_accepted,
            on_path=lambda lp: accepted.append(
                (lp.path.leads, lp.final_value)
            ),
        )
        total = result.total_logical
        approx = result.accepted
        chunks = [
            accepted[i : i + CHUNK_SIZE]
            for i in range(0, len(accepted), CHUNK_SIZE)
        ] or []
        payloads = [
            (circuit, criterion.name,
             None if sort_obj is None else sort_obj.ranks,
             chunk, max_conflicts)
            for chunk in chunks
        ]
        labels = [f"{circuit.name}:verdicts[{i}]" for i in range(len(payloads))]
        outcomes = runner.map(_verdict_chunk_task, payloads, labels=labels)
        exact = replays = conflicts = decisions = reuse = 0
        for outcome in outcomes:
            if isinstance(outcome, RowFailure):
                raise VerdictError(
                    f"verdict chunk {outcome.label} failed "
                    f"({outcome.kind}): {outcome.message}"
                )
            sat, rep, conf, dec, ruse = outcome
            exact += sat
            replays += rep
            conflicts += conf
            decisions += dec
            reuse += ruse

    session._store_put(  # noqa: SLF001 - session store plumbing
        "tightness",
        variant,
        {
            "schema": TIGHTNESS_SCHEMA,
            "total_logical": total,
            "approx_accepted": approx,
            "exact_accepted": exact,
            "replays": replays,
        },
    )
    return make_row(total, approx, exact, replays,
                    (conflicts, decisions, reuse), "computed")


def default_suite_circuits(max_inputs: int = DEFAULT_MAX_INPUTS) -> list[str]:
    """Suite circuit names eligible for the default tightness sweep
    (at most ``max_inputs`` PIs, so verdicts stay cross-checkable
    against ``exact.exists_vector``)."""
    from repro.gen.suite import SUITE, get_circuit

    names = []
    for name in sorted(SUITE):
        if len(get_circuit(name).inputs) <= max_inputs:
            names.append(name)
    return names


def run_tightness(
    circuits: "Iterable[Circuit] | None" = None,
    criterion: Criterion = Criterion.SIGMA_PI,
    sort: "InputSort | str | None" = "heu2",
    *,
    store=None,
    runner: "TaskRunner | None" = None,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    max_accepted: "int | None" = DEFAULT_MAX_ACCEPTED,
    max_conflicts: int = DEFAULT_MAX_CONFLICTS,
) -> TightnessReport:
    """Tightness sweep: one row per circuit, SKIP rows for circuits over
    the PI ceiling or the accepted-paths budget (never a silent drop).
    """
    from repro.gen.suite import get_circuit

    start = time.perf_counter()
    if circuits is None:
        circuits = [get_circuit(name) for name in default_suite_circuits(max_inputs)]
    else:
        from repro.loading import as_core

        circuits = [
            c if isinstance(c, Circuit) else as_core(c) for c in circuits
        ]
    if criterion is not Criterion.SIGMA_PI:
        report_sort = "none"
    elif isinstance(sort, str):
        report_sort = sort
    elif sort is None:
        report_sort = "heu2"
    else:
        report_sort = "custom"
    rows = []
    for circuit in circuits:
        n_inputs = len(circuit.inputs)
        if n_inputs > max_inputs:
            rows.append(
                TightnessRow(
                    circuit=circuit.name,
                    criterion=criterion.name,
                    sort_label="-",
                    total_logical=0,
                    approx_accepted=0,
                    exact_accepted=0,
                    witness_replays=0,
                    source="skipped",
                    skipped=f"{n_inputs} PIs > --max-inputs {max_inputs}",
                )
            )
            continue
        try:
            row = tightness_row(
                circuit,
                criterion,
                sort,
                store=store,
                runner=runner,
                max_accepted=max_accepted,
                max_conflicts=max_conflicts,
            )
            rows.append(row)
        except ClassifyError:
            rows.append(
                TightnessRow(
                    circuit=circuit.name,
                    criterion=criterion.name,
                    sort_label="-",
                    total_logical=0,
                    approx_accepted=0,
                    exact_accepted=0,
                    witness_replays=0,
                    source="skipped",
                    skipped=(
                        f"classifier accepted > {max_accepted} paths "
                        f"(--max-accepted budget)"
                    ),
                )
            )
    return TightnessReport(
        criterion=criterion,
        sort_label=report_sort,
        rows=tuple(rows),
        wall_seconds=time.perf_counter() - start,
    )
