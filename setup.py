"""Setup shim: keeps ``pip install -e .`` working on offline machines
without the ``wheel`` package (legacy editable install path)."""

from setuptools import setup

setup()
