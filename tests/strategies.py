"""Hypothesis strategies for circuits and related objects.

``small_circuits()`` draws structurally diverse little circuits (3-6
PIs, up to ~18 gates) suitable for exhaustive cross-validation against
brute-force oracles.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_GATES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.NOT]


@st.composite
def small_circuits(
    draw,
    min_inputs: int = 3,
    max_inputs: int = 5,
    min_gates: int = 3,
    max_gates: int = 14,
) -> Circuit:
    num_inputs = draw(st.integers(min_inputs, max_inputs))
    num_gates = draw(st.integers(min_gates, max_gates))
    circuit = Circuit("hyp")
    nodes = [circuit.add_gate(GateType.PI, f"x{i}") for i in range(num_inputs)]
    for g in range(num_gates):
        gtype = draw(st.sampled_from(_GATES))
        if gtype is GateType.NOT:
            fanin = [nodes[draw(st.integers(0, len(nodes) - 1))]]
        else:
            k = draw(st.integers(2, 3))
            indices = draw(
                st.lists(
                    st.integers(0, len(nodes) - 1),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
            fanin = [nodes[i] for i in indices]
        nodes.append(circuit.add_gate(gtype, f"g{g}", fanin))
    # Wire all sinks to POs so every gate is observable.
    read: set = set()
    for gid in range(circuit.num_gates):
        read.update(circuit.fanin(gid))
    sinks = [
        gid
        for gid in range(circuit.num_gates)
        if gid not in read and circuit.gate_type(gid) is not GateType.PI
    ]
    if not sinks:
        sinks = [nodes[-1]]
    for k, gid in enumerate(sinks):
        circuit.add_gate(GateType.PO, f"out{k}", [gid])
    return circuit.freeze()


@st.composite
def vectors_for(draw, circuit: Circuit) -> tuple:
    return tuple(
        draw(st.integers(0, 1)) for _ in range(len(circuit.inputs))
    )
