"""Trail-based local implication engine.

This is the approximation machinery of the paper's Algorithm 2 (after
Cheng & Chen [2]): sensitization conditions along a path are injected as
value assignments on nets, and only their *direct* (local) implications
are propagated.  If the implications contradict each other, no input
vector can satisfy the conditions and the path (segment) is provably
robust dependent; if no contradiction arises, the path is conservatively
assumed sensitizable.  Hence the engine being local/incomplete makes the
computed set a *superset* ``LP^sup`` — the approximation is sound for RD
identification.

Direct implication rules for a simple gate with controlling value ``c``:

* forward:  some input = c            ⟹ output = controlled output
* forward:  all inputs = non-c        ⟹ output = uncontrolled output
* backward: output = uncontrolled     ⟹ every input = non-c
* backward: output = controlled and all inputs but one = non-c
                                      ⟹ the last input = c

plus the obvious rules for NOT/BUF/PO.  The engine keeps a trail so a DFS
can assume values and backtrack in O(#assignments undone).
"""

from __future__ import annotations

from collections import deque

from repro.circuit.gates import (
    GateType,
    controlling_value,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit
from repro.logic.values import X, controlled_output, uncontrolled_output


class Conflict(Exception):
    """Internal signal: an implication contradicted an existing value."""


class ImplicationEngine:
    """Maintains ternary values on all nets of one circuit with undo.

    Typical use in a DFS::

        mark = engine.mark()
        if engine.assume(gate, value):
            ...recurse...
        engine.undo_to(mark)
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit._require_frozen()  # noqa: SLF001 - deliberate internal check
        self.circuit = circuit
        n = circuit.num_gates
        self._value = [X] * n
        self._trail: list[int] = []
        # Cache per-gate static data for the hot loop.
        self._fanin = [circuit.fanin(g) for g in range(n)]
        self._fanout_gates = [
            tuple(sorted({dst for dst, _pin in circuit.fanout(g)}))
            for g in range(n)
        ]
        self._ctrl = [-2] * n  # controlling value, or -2 for none
        self._out_ctrl = [0] * n
        self._out_nc = [0] * n
        self._kind = [0] * n  # 0=PI, 1=wire(PO/BUF), 2=NOT, 3=simple
        for g in range(n):
            t = circuit.gate_type(g)
            if t is GateType.PI:
                self._kind[g] = 0
            elif t in (GateType.PO, GateType.BUF):
                self._kind[g] = 1
            elif t is GateType.NOT:
                self._kind[g] = 2
            elif has_controlling_value(t):
                self._kind[g] = 3
                self._ctrl[g] = controlling_value(t)
                self._out_ctrl[g] = controlled_output(t)
                self._out_nc[g] = uncontrolled_output(t)
            else:
                raise ValueError(f"unsupported gate type {t.name}")

    # ------------------------------------------------------------------
    def value(self, gate: int) -> int:
        """Current ternary value of gate output ``gate`` (0, 1 or X)."""
        return self._value[gate]

    def mark(self) -> int:
        """A trail position to later :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Unassign everything recorded after ``mark``."""
        trail = self._trail
        value = self._value
        while len(trail) > mark:
            value[trail.pop()] = X

    def reset(self) -> None:
        self.undo_to(0)

    def num_assigned(self) -> int:
        return len(self._trail)

    def assignment(self) -> dict[int, int]:
        """Snapshot of all currently assigned nets."""
        return {g: self._value[g] for g in self._trail}

    # ------------------------------------------------------------------
    def assume(self, gate: int, value: int) -> bool:
        """Assign ``gate := value`` and propagate direct implications.

        Returns True if consistent so far, False on contradiction.  In
        both cases all assignments made are on the trail, so the caller's
        ``undo_to(mark)`` restores the previous state exactly.
        """
        try:
            self._post(gate, value)
            return True
        except Conflict:
            return False

    def assume_all(self, assignments: "list[tuple[int, int]]") -> bool:
        """Assume several (gate, value) pairs; False on any contradiction."""
        try:
            for gate, value in assignments:
                self._post(gate, value)
            return True
        except Conflict:
            return False

    # ------------------------------------------------------------------
    def _post(self, gate: int, value: int) -> None:
        queue: deque[int] = deque()
        self._set(gate, value, queue)
        self._drain(queue)

    def _set(self, gate: int, value: int, queue: deque[int]) -> None:
        cur = self._value[gate]
        if cur != X:
            if cur != value:
                raise Conflict
            return
        self._value[gate] = value
        self._trail.append(gate)
        # Re-examine the gate itself (backward rules) and its fanout
        # gates (forward rules + their backward last-input rule).
        queue.append(gate)
        queue.extend(self._fanout_gates[gate])

    def _drain(self, queue: deque[int]) -> None:
        while queue:
            self._examine(queue.popleft(), queue)

    def _examine(self, gate: int, queue: deque[int]) -> None:
        kind = self._kind[gate]
        if kind == 0:  # PI: nothing to infer
            return
        value = self._value
        fanin = self._fanin[gate]
        out = value[gate]
        if kind == 1:  # PO / BUF: output == input
            src = fanin[0]
            if value[src] != X:
                self._set(gate, value[src], queue)
            elif out != X:
                self._set(src, out, queue)
            return
        if kind == 2:  # NOT: output == !input
            src = fanin[0]
            if value[src] != X:
                self._set(gate, 1 - value[src], queue)
            elif out != X:
                self._set(src, 1 - out, queue)
            return
        # Simple gate with a controlling value.
        c = self._ctrl[gate]
        nc = 1 - c
        unknown = -1
        unknown_count = 0
        saw_ctrl = False
        for src in fanin:
            v = value[src]
            if v == c:
                saw_ctrl = True
                break
            if v == X:
                unknown_count += 1
                unknown = src
        if saw_ctrl:
            self._set(gate, self._out_ctrl[gate], queue)
            return
        if unknown_count == 0:
            self._set(gate, self._out_nc[gate], queue)
            return
        if out == self._out_nc[gate]:
            # Output uncontrolled: every input must be non-controlling.
            for src in fanin:
                if value[src] == X:
                    self._set(src, nc, queue)
        elif out == self._out_ctrl[gate] and unknown_count == 1:
            # All but one inputs non-controlling: the last must control.
            self._set(unknown, c, queue)
