"""Complete stabilizing assignments (Definition 3, Theorem 1).

A complete stabilizing assignment σ picks one stabilizing system per
input vector (and, for multi-output circuits, per output — the paper
treats each output cone separately).  ``LP(σ)`` is the union of the
selected systems' logical paths; Theorem 1 states that testing ``LP(σ)``
robustly suffices, so ``RD(σ) = LP(C) \\ LP(σ)`` is an RD-set.

This module computes assignments *exactly*, by enumerating all ``2^n``
input vectors — only feasible for small circuits.  It is the reference
implementation against which the fast approximate classifier
(:mod:`repro.classify`) is validated, and the substrate of the exact
baseline (:mod:`repro.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.circuit.netlist import Circuit
from repro.logic.simulate import all_vectors
from repro.paths.path import LogicalPath
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.input_sort import InputSort
from repro.stabilize.system import (
    ChoicePolicy,
    StabilizingSystem,
    compute_stabilizing_system,
    first_pin_policy,
)

_MAX_INPUTS = 20


@dataclass(frozen=True)
class CompleteStabilizingAssignment:
    """σ: one stabilizing system per (primary output, input vector)."""

    circuit: Circuit
    systems: Mapping

    def system(self, po: int, vector: tuple[int, ...]) -> StabilizingSystem:
        return self.systems[(po, vector)]

    def logical_paths(self) -> set[LogicalPath]:
        """``LP(σ)`` — the paths that must be tested robustly."""
        paths: set[LogicalPath] = set()
        for system in self.systems.values():
            paths |= system.logical_paths()
        return paths

    def rd_paths(self) -> set[LogicalPath]:
        """``RD(σ) = LP(C) \\ LP(σ)`` — a true RD-set (Theorem 1)."""
        selected = self.logical_paths()
        return {
            lp for lp in enumerate_logical_paths(self.circuit) if lp not in selected
        }

    def verify(self, trials_per_system: int = 4, seed: int = 0) -> bool:
        """Randomised check that every selected system stabilizes."""
        return all(
            system.stabilizes(trials=trials_per_system, seed=seed + i)
            for i, system in enumerate(self.systems.values())
        )


def _check_size(circuit: Circuit) -> None:
    if len(circuit.inputs) > _MAX_INPUTS:
        raise ValueError(
            "exact assignment computation enumerates all input vectors; "
            f"{len(circuit.inputs)} PIs is too many (max {_MAX_INPUTS})"
        )


def assignment_from_policy(
    circuit: Circuit, policy: ChoicePolicy = first_pin_policy
) -> CompleteStabilizingAssignment:
    """Apply Algorithm 1 with ``policy`` to every (PO, input vector)."""
    _check_size(circuit)
    systems = {}
    for vector in all_vectors(len(circuit.inputs)):
        for po in circuit.outputs:
            systems[(po, vector)] = compute_stabilizing_system(
                circuit, po, vector, policy
            )
    return CompleteStabilizingAssignment(circuit=circuit, systems=systems)


def assignment_from_sort(
    circuit: Circuit, sort: InputSort
) -> CompleteStabilizingAssignment:
    """The assignment ``σ^π`` induced by input sort ``π`` (Section IV):
    Step 2(b) always picks the candidate lead of minimum π-position."""

    def policy(
        c: Circuit, gate: int, pins: Sequence[int], values: Sequence[int]
    ) -> int:
        return sort.min_rank_pin(gate, pins)

    return assignment_from_policy(circuit, policy)


def assignment_from_choices(
    circuit: Circuit,
    chooser: Callable[[tuple[int, ...], int], ChoicePolicy],
) -> CompleteStabilizingAssignment:
    """An assignment with a per-(vector, PO) policy — full generality of
    Definition 3 (used to reproduce Example 2/3, where one single input
    vector's system is swapped)."""
    _check_size(circuit)
    systems = {}
    for vector in all_vectors(len(circuit.inputs)):
        for po in circuit.outputs:
            policy = chooser(vector, po)
            systems[(po, vector)] = compute_stabilizing_system(
                circuit, po, vector, policy
            )
    return CompleteStabilizingAssignment(circuit=circuit, systems=systems)
