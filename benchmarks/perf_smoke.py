"""Classifier-throughput smoke check with a hard floor (CI gate).

Runs a small fixed workload — FS and SIGMA_PI (Heuristic-1 sort) passes
over a three-circuit subset of the Table-I suite — and fails (exit 1) if
aggregate throughput lands below ``FLOOR_EDGES_PER_SECOND``.

The floor is deliberately far below the committed ``BENCH_classify.json``
numbers: shared CI runners are slow and noisy, and this gate exists to
catch order-of-magnitude engine regressions (an accidental return to
object-graph traversal, a broken memo table), not percent-level drift.
Use ``record_classify_bench.py`` on a quiet machine for real numbers.

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import sys

from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.gen.suite import get_circuit

#: Hard throughput floor (path-edge extensions per second).  The flat-IR
#: bitset engine clears ~700k e/s on a quiet dev machine; the pre-flat
#: engine recorded 143k.  150k therefore passes only with the fast
#: kernel, with ~4x headroom for slow CI hardware.
FLOOR_EDGES_PER_SECOND = 150_000

#: Enough edges to dominate interpreter warm-up, small enough for CI.
SMOKE_CIRCUITS = ("s432-rand", "s1355-par", "s2670-rand")


def run_smoke() -> "tuple[int, float]":
    """Run the smoke workload; returns (total edges, total seconds)."""
    edges = 0
    elapsed = 0.0
    for name in SMOKE_CIRCUITS:
        session = CircuitSession(get_circuit(name))
        for criterion, sort in (
            (Criterion.FS, None),
            (Criterion.SIGMA_PI, session.heuristic1_sort()),
        ):
            result = session.classify(criterion, sort=sort)
            edges += result.edges_visited
            elapsed += result.elapsed
    return edges, elapsed


def main() -> int:
    edges, elapsed = run_smoke()
    rate = edges / elapsed if elapsed else 0.0
    status = "ok" if rate >= FLOOR_EDGES_PER_SECOND else "FAIL"
    print(
        f"perf-smoke: {edges} edges in {elapsed:.2f}s = {rate:,.0f} edges/s "
        f"(floor {FLOOR_EDGES_PER_SECOND:,}) [{status}]"
    )
    return 0 if status == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
