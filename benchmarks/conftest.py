"""Shared state for the benchmark harness.

Each table bench measures its real pipeline (``benchmark.pedantic`` with
one round — these are minutes-long experiments, not microbenchmarks) and
deposits its rows here; the session-finish hook prints the regenerated
paper tables.
"""

from __future__ import annotations

import pytest

#: circuit name -> Table1Row, filled by benchmarks/test_table1_bench.py
TABLE1_ROWS: dict = {}
#: circuit name -> Table3Row, filled by benchmarks/test_table3_bench.py
TABLE3_ROWS: dict = {}


def pytest_sessionfinish(session, exitstatus):
    from repro.experiments import table2, table3
    from repro.util.tables import TextTable

    pieces = []
    if TABLE1_ROWS:
        table = TextTable(
            ["circuit", "FUS", "Heu1", "Heu2", "inv-Heu2"],
            title="Table I: % of logical paths identified RD",
        )
        for row in TABLE1_ROWS.values():
            table.add_row(
                [
                    row.name,
                    f"{row.fus_percent:.2f} %",
                    f"{row.heu1_percent:.2f} %",
                    f"{row.heu2_percent:.2f} %",
                    f"{row.heu2_inverse_percent:.2f} %",
                ]
            )
        pieces.append(table.render())
        pieces.append(
            table2.run(rows=list(TABLE1_ROWS.values()), include_count_only=True)
            .render()
        )
    if TABLE3_ROWS:
        table = TextTable(
            ["circuit", "baseline RD%", "baseline time", "Heu2 RD%",
             "Heu2 time", "gap", "speedup"],
            title="Table III: approach of [1] vs Heuristic 2",
        )
        from repro.util.timer import format_duration

        for row in TABLE3_ROWS.values():
            table.add_row(
                [
                    row.name,
                    f"{row.baseline_percent:.2f} %",
                    format_duration(row.baseline_time),
                    f"{row.heu2_percent:.2f} %",
                    format_duration(row.heu2_time),
                    f"{row.quality_gap:+.2f} %",
                    f"{row.speedup:.1f}x",
                ]
            )
        pieces.append(table.render())
    if pieces:
        print("\n\n" + "\n\n".join(pieces) + "\n")


@pytest.fixture(scope="session")
def table1_rows():
    return TABLE1_ROWS


@pytest.fixture(scope="session")
def table3_rows():
    return TABLE3_ROWS


#: circuit name -> CircuitSession, shared across the whole bench session
#: so repeated pipelines hit the per-circuit caches (counts, engine,
#: per-(criterion, sort) tables) instead of rebuilding them.
_SESSIONS: dict = {}


@pytest.fixture(scope="session")
def circuit_sessions():
    """Factory returning the shared per-circuit analysis session."""
    from repro.classify.session import CircuitSession

    def get(circuit):
        session = _SESSIONS.get(circuit.name)
        if session is None or session.circuit is not circuit:
            session = _SESSIONS[circuit.name] = CircuitSession(circuit)
        return session

    return get
