"""Tseitin encoding of circuits into CNF.

Each gate output gets one SAT variable; the standard clause sets encode
gate consistency.  :class:`CircuitEncoding` remembers the gate→variable
map so callers can constrain PIs/POs and decode models back to vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.atpg.cnf import CNF


@dataclass
class CircuitEncoding:
    """CNF plus the variable bookkeeping of one or more encoded circuits."""

    cnf: CNF
    var_of_gate: dict = field(default_factory=dict)

    def var(self, gate: int) -> int:
        return self.var_of_gate[gate]

    def decode_inputs(self, circuit: Circuit, model: list) -> tuple[int, ...]:
        """Extract the PI vector (in ``circuit.inputs`` order) from a model."""
        return tuple(int(model[self.var_of_gate[pi]]) for pi in circuit.inputs)


def encode_gate(cnf: CNF, gtype: GateType, out: int, ins: list[int]) -> None:
    """Append the consistency clauses of one gate to ``cnf``.

    ``out``/``ins`` are SAT variables (positive ints).
    """
    if gtype is GateType.PI:
        return
    if gtype in (GateType.PO, GateType.BUF):
        cnf.add_clause([-out, ins[0]])
        cnf.add_clause([out, -ins[0]])
        return
    if gtype is GateType.NOT:
        cnf.add_clause([-out, -ins[0]])
        cnf.add_clause([out, ins[0]])
        return
    if gtype is GateType.AND:
        for i in ins:
            cnf.add_clause([-out, i])
        cnf.add_clause([out] + [-i for i in ins])
        return
    if gtype is GateType.NAND:
        for i in ins:
            cnf.add_clause([out, i])
        cnf.add_clause([-out] + [-i for i in ins])
        return
    if gtype is GateType.OR:
        for i in ins:
            cnf.add_clause([out, -i])
        cnf.add_clause([-out] + list(ins))
        return
    if gtype is GateType.NOR:
        for i in ins:
            cnf.add_clause([-out, -i])
        cnf.add_clause([out] + list(ins))
        return
    raise ValueError(f"cannot encode gate type {gtype.name}")


def tseitin_encode(
    circuit: Circuit,
    cnf: CNF | None = None,
    share_vars: dict | None = None,
    forced_pins: dict | None = None,
) -> CircuitEncoding:
    """Encode ``circuit`` into ``cnf`` (a fresh one if None).

    ``share_vars``: optional pre-assigned variables for some gates (used
    by miters to share PI variables between the good and faulty copy).

    ``forced_pins``: optional mapping ``lead index -> 0/1`` that replaces
    the signal *seen at that input pin* by a constant — this is how a
    stuck-at fault on a lead is injected without restructuring the
    circuit.  The constant is encoded as a frozen fresh variable.
    """
    if cnf is None:
        cnf = CNF()
    var_of_gate: dict = dict(share_vars or {})
    constants: dict[int, int] = {}

    def const_var(value: int) -> int:
        if value not in constants:
            v = cnf.new_var()
            cnf.add_clause([v if value else -v])
            constants[value] = v
        return constants[value]

    for gid in circuit.topo_order:
        if gid not in var_of_gate:
            var_of_gate[gid] = cnf.new_var()
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            continue
        ins = []
        for pin, src in enumerate(circuit.fanin(gid)):
            lead = circuit.lead_index(gid, pin)
            if forced_pins and lead in forced_pins:
                ins.append(const_var(forced_pins[lead]))
            else:
                ins.append(var_of_gate[src])
        encode_gate(cnf, gtype, var_of_gate[gid], ins)
    return CircuitEncoding(cnf=cnf, var_of_gate=var_of_gate)
