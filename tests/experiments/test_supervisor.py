"""Unit tests for the supervised task runner and JSONL checkpointing
(the non-violent half; process-killing tests live in ``tests/chaos``)."""

import json

import pytest

from repro.errors import (
    ClassifyError,
    HarnessError,
    ReproError,
    TaskCrashed,
    TaskTimeout,
)
from repro.experiments.harness import Table1Row, Table3Row
from repro.experiments.supervisor import (
    Checkpoint,
    RowFailure,
    TaskRunner,
    as_checkpoint,
    default_task_budget,
)
from repro.experiments.sweep import SweepPoint


def _double(x):
    return 2 * x


def _maybe_fail(x):
    if x == 2:
        raise ValueError("boom")
    return x


class TestTaskRunnerSerial:
    def test_map_preserves_order(self):
        assert TaskRunner().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            TaskRunner(jobs=0)
        with pytest.raises(ValueError):
            TaskRunner(jobs=-4)

    def test_max_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            TaskRunner(max_retries=-1)

    def test_in_process_failure_becomes_row_failure(self):
        runner = TaskRunner()
        results = runner.map(_maybe_fail, [1, 2, 3], labels=["a", "b", "c"])
        assert results[0] == 1 and results[2] == 3
        failure = results[1]
        assert isinstance(failure, RowFailure)
        assert failure.label == "b"
        assert failure.kind == "error"
        assert "boom" in failure.message
        assert any(e.kind == "failed" for e in runner.events)

    def test_on_result_streams_in_order(self):
        seen = []
        TaskRunner().map(
            _double, [1, 2], on_result=lambda i, r: seen.append((i, r))
        )
        assert seen == [(0, 2), (1, 4)]

    def test_label_and_budget_length_mismatch(self):
        with pytest.raises(ValueError):
            TaskRunner().map(_double, [1, 2], labels=["only-one"])
        with pytest.raises(ValueError):
            TaskRunner().map(_double, [1, 2], budgets=[1.0])


class TestTaskRunnerPool:
    def test_pool_map_matches_serial(self):
        serial = TaskRunner().map(_double, list(range(6)))
        pooled = TaskRunner(jobs=3).map(_double, list(range(6)))
        assert pooled == serial

    def test_single_task_stays_in_process(self):
        """n=1 short-circuits the pool entirely (deterministic path)."""
        runner = TaskRunner(jobs=4)
        assert runner.map(_double, [21]) == [42]
        assert runner.events == []


class TestRowFailure:
    def test_round_trip(self):
        failure = RowFailure("c432", "timeout", "over budget", 3)
        assert RowFailure.from_dict(failure.to_dict()) == failure

    def test_str_mentions_everything(self):
        text = str(RowFailure("c432", "crashed", "worker died", 2))
        assert "c432" in text and "crashed" in text and "2" in text


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(TaskTimeout, HarnessError)
        assert issubclass(TaskCrashed, HarnessError)
        assert issubclass(HarnessError, ReproError)
        # backwards compatibility with pre-taxonomy except clauses
        assert issubclass(ClassifyError, RuntimeError)
        from repro.circuit.netlist import CircuitError

        assert issubclass(CircuitError, ReproError)
        assert issubclass(CircuitError, ValueError)
        from repro.circuit.bench import BenchParseError

        assert issubclass(BenchParseError, ReproError)

    def test_task_timeout_message(self):
        exc = TaskTimeout("c880", 12.5)
        assert "c880" in str(exc) and "12.5" in str(exc)
        assert exc.budget == 12.5

    def test_task_crashed_message(self):
        exc = TaskCrashed("c880", "worker killed")
        assert "c880" in str(exc) and "worker killed" in str(exc)


class TestDefaultTaskBudget:
    def test_floor_applies_to_tiny_circuits(self):
        assert default_task_budget(0) == 60.0

    def test_grows_with_path_count(self):
        small = default_task_budget(10_000)
        large = default_task_budget(50_000_000)
        assert large > small > 0


class TestCheckpoint:
    def test_record_and_load(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "c.jsonl", "table1")
        ckpt.record("a", {"x": 1})
        ckpt.record("b", {"x": 2})
        assert ckpt.load() == {"a": {"x": 1}, "b": {"x": 2}}

    def test_kind_namespacing(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        Checkpoint(path, "table1").record("a", {"x": 1})
        Checkpoint(path, "sweep").record("2", {"y": 3})
        assert Checkpoint(path, "table1").load() == {"a": {"x": 1}}
        assert Checkpoint(path, "sweep").load() == {"2": {"y": 3}}

    def test_missing_file_loads_empty(self, tmp_path):
        assert Checkpoint(tmp_path / "nope.jsonl", "table1").load() == {}

    def test_torn_tail_and_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ckpt = Checkpoint(path, "table1")
        ckpt.record("a", {"x": 1})
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write('{"kind": "table1", "key": "torn')  # torn tail
        assert ckpt.load() == {"a": {"x": 1}}

    def test_later_record_wins(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "c.jsonl", "table1")
        ckpt.record("a", {"x": 1})
        ckpt.record("a", {"x": 2})
        assert ckpt.load() == {"a": {"x": 2}}

    def test_float_values_round_trip_exactly(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "c.jsonl", "table1")
        value = 93.33333333333333  # a repr-faithful percent
        ckpt.record("a", {"p": value})
        assert ckpt.load()["a"]["p"] == value

    def test_as_checkpoint_normalization(self, tmp_path):
        assert as_checkpoint(None, "table1") is None
        instance = Checkpoint(tmp_path / "c.jsonl", "table1")
        assert as_checkpoint(instance, "table1") is instance
        built = as_checkpoint(str(tmp_path / "d.jsonl"), "sweep")
        assert isinstance(built, Checkpoint) and built.kind == "sweep"


class TestRowSerialization:
    def test_table1_row_round_trip(self):
        row = Table1Row(
            name="c17",
            total_logical=22,
            fus_percent=18.181818181818183,
            heu1_percent=27.27272727272727,
            heu2_percent=31.818181818181817,
            heu2_inverse_percent=22.727272727272727,
            time_heu1=0.001,
            time_heu2=0.003,
        )
        copied = Table1Row.from_dict(
            json.loads(json.dumps(row.to_dict()))
        )
        assert copied == row

    def test_table3_row_round_trip(self):
        row = Table3Row(
            name="apex",
            total_logical=100,
            baseline_percent=12.5,
            baseline_time=1.25,
            heu2_percent=10.0,
            heu2_time=0.05,
        )
        assert Table3Row.from_dict(
            json.loads(json.dumps(row.to_dict()))
        ) == row

    def test_sweep_point_round_trip(self):
        point = SweepPoint(
            parameter=4,
            gates=30,
            total_logical=64,
            accepted=12,
            classify_seconds=0.002,
        )
        assert SweepPoint.from_dict(
            json.loads(json.dumps(point.to_dict()))
        ) == point

    def test_sweep_point_none_fields_round_trip(self):
        point = SweepPoint(
            parameter=9,
            gates=400,
            total_logical=10**12,
            accepted=None,
            classify_seconds=None,
        )
        assert SweepPoint.from_dict(
            json.loads(json.dumps(point.to_dict()))
        ) == point
