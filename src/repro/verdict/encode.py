"""CNF encoding of per-path sensitization side-conditions.

One Tseitin base encoding per circuit (:class:`SensitizationEncoder`),
one *assumption set* per (logical path, criterion) query — never a new
CNF.  This is what makes thousands of per-path SAT queries against one
circuit cheap: the incremental solver keeps the base encoding, its
watches and its learned clauses, and each path contributes only unit
assumptions.

Why unit assumptions suffice
----------------------------

The criterion conditions ((FU1)-(FU2), (NR1)-(NR2), (π1)-(π3)) branch
on whether the *stable on-path value* entering each gate is the gate's
controlling value.  Along the path, that value is fully determined by
the transition's final value at the PI and the inverting gates crossed
— it is :meth:`LogicalPath.value_at`, not a free variable:

* if the on-path value is controlling, the gate output equals its
  forced value regardless of side inputs (the CNF derives this by unit
  propagation);
* if it is non-controlling, the criterion requires every relevant side
  input non-controlling, and then the output is again forced.

Either way the branch taken by ``satisfies_criterion`` under *any*
satisfying vector matches the statically-computed on-path value, so
the whole query is: base CNF + unit assumptions
``PI(P) = final value`` and ``side input = non-controlling value`` for
each side pin the criterion table names.  SAT ⟺
:func:`repro.classify.exact.exists_vector` (differential-tested).

The walk runs over the flat CSR IR (:mod:`repro.circuit.flat`): lead
``l`` feeds pin ``l - fanin_start[lead_dst[l]]`` of ``lead_dst[l]``
from source ``fanin_gates[l]``, and the per-gate ``ctrl``/``out_ctrl``/
``out_nc`` tables drive both the branch choice and the on-path value
update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.atpg.tseitin import CircuitEncoding, tseitin_encode
from repro.circuit.flat import K_NOT, K_SIMPLE
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.paths.path import LogicalPath

if TYPE_CHECKING:  # annotation-only; avoids a verdict <-> sorting cycle
    from repro.sorting.input_sort import InputSort


@dataclass(frozen=True)
class PathQuery:
    """One path's sensitization question, ready for the solver.

    ``assumptions`` are DIMACS literals over the circuit's base
    encoding; ``trivially_unsat`` is set when two side-conditions
    demand opposite values of the same gate (no solver call needed —
    the query is unsatisfiable by construction).
    """

    assumptions: tuple[int, ...]
    trivially_unsat: bool = False


class SensitizationEncoder:
    """Per-circuit Tseitin base CNF plus the per-path assumption builder."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.encoding: CircuitEncoding = tseitin_encode(circuit)
        self._var = [
            self.encoding.var_of_gate.get(g, 0)
            for g in range(circuit.num_gates)
        ]

    def query(
        self,
        logical_path: LogicalPath,
        criterion: Criterion,
        sort: "InputSort | None" = None,
    ) -> PathQuery:
        """The criterion's conditions for ``logical_path`` as assumptions."""
        flat = self.circuit.flat
        kind = flat.kind
        ctrl = flat.ctrl
        out_ctrl = flat.out_ctrl
        out_nc = flat.out_nc
        fanin_start = flat.fanin_start
        fanin_gates = flat.fanin_gates
        lead_dst = flat.lead_dst
        sigma = criterion is Criterion.SIGMA_PI
        if sigma and sort is None:
            raise ValueError("SIGMA_PI criterion requires an input sort")
        fs = criterion is Criterion.FS

        # gate -> required stable value; insertion order keeps the
        # assumption tuple deterministic for a given path.
        required: dict[int, int] = {}
        contradiction = False

        def require(gate: int, value: int) -> None:
            nonlocal contradiction
            prior = required.setdefault(gate, value)
            if prior != value:
                contradiction = True

        leads = logical_path.path.leads
        value = logical_path.final_value
        require(fanin_gates[leads[0]], value)  # (FU1)/(NR1)/(π1)
        for lead in leads:
            dst = lead_dst[lead]
            k = kind[dst]
            if k == K_SIMPLE:
                c = ctrl[dst]
                start = fanin_start[dst]
                end = fanin_start[dst + 1]
                if value != c:
                    # (FU2)/(NR2)/(π2): every side input non-controlling.
                    side = range(start, end)
                elif fs:
                    side = ()
                elif sigma:
                    # (π3): only the low-order side inputs of the lead.
                    side = (start + p for p in sort.low_order_side_pins(lead))
                else:  # NR: all side inputs, controlling case included
                    side = range(start, end)
                nc = 1 - c
                for side_lead in side:
                    if side_lead != lead:
                        require(fanin_gates[side_lead], nc)
                value = out_ctrl[dst] if value == c else out_nc[dst]
            elif k == K_NOT:
                value = 1 - value
            # K_WIRE / K_PO forward the value and impose no conditions.
        assumptions = tuple(
            var if val else -var
            for gate, val in required.items()
            for var in (self._var[gate],)
        )
        return PathQuery(assumptions=assumptions, trivially_unsat=contradiction)

    def decode_witness(self, model: list) -> tuple[int, ...]:
        """PI vector (in ``circuit.inputs`` order) from a SAT model."""
        return self.encoding.decode_inputs(self.circuit, model)
