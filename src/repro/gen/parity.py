"""Parity / error-correcting-code style circuits (c499/c1355-like).

XOR-dominated networks.  Expanding each XOR into simple gates (the
paper's model) quadruples the path count per tree level and creates the
huge functionally-unsensitizable fractions the paper reports for the
ECC circuits c499/c1355 (30-86% RD).
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def parity_tree(width: int, style: str = "sop", name: str | None = None) -> Circuit:
    """Balanced XOR parity tree over ``width`` inputs.

    ``style``: ``"sop"`` expands each XOR as AND-OR-NOT (every path is
    functionally sensitizable); ``"nand"`` uses the 4-NAND realisation
    with a shared internal node (3 paths per XOR input, a large fraction
    functionally unsensitizable — the c499/c1355 behaviour).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if style not in ("sop", "nand"):
        raise ValueError("style must be 'sop' or 'nand'")
    b = CircuitBuilder(name or f"parity{width}_{style}")
    xor2 = b.xor if style == "sop" else b.xor_nand
    nodes = [b.pi(f"x{i}") for i in range(width)]
    level = 0
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(xor2(nodes[i], nodes[i + 1], name=f"l{level}_{i // 2}"))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
        level += 1
    b.po(nodes[0], "parity")
    return b.build()


def ecc_encoder(
    data_bits: int = 8, style: str = "sop", name: str | None = None
) -> Circuit:
    """A Hamming-style single-error-correcting encoder.

    Emits the data bits together with overlapping parity groups — each
    parity output is an XOR tree over a subset of the data, so data bits
    fan out into several XOR trees (reconvergence across outputs, like
    the c499 ECAT structure).
    """
    if data_bits < 2:
        raise ValueError("data_bits must be >= 2")
    if style not in ("sop", "nand"):
        raise ValueError("style must be 'sop' or 'nand'")
    b = CircuitBuilder(name or f"ecc{data_bits}_{style}")
    xor2 = b.xor if style == "sop" else b.xor_nand
    data = [b.pi(f"d{i}") for i in range(data_bits)]
    # Parity group p_k covers data positions whose (k-th bit of index+1)
    # is set — the Hamming code membership rule.  Using bit_length keeps
    # every group non-empty (group k needs some i+1 >= 2^k <= data_bits).
    num_parity = data_bits.bit_length()
    for k in range(num_parity):
        members = [
            data[i] for i in range(data_bits) if ((i + 1) >> k) & 1
        ]
        if len(members) == 1:
            b.po(b.buf(members[0], name=f"p{k}_buf"), f"p{k}")
            continue
        node = members[0]
        for m, other in enumerate(members[1:]):
            node = xor2(node, other, name=f"p{k}_x{m}")
        b.po(node, f"p{k}")
    for i in range(data_bits):
        b.po(b.buf(data[i], name=f"dout{i}_buf"), f"dout{i}")
    return b.build()
