"""The frozen netlists must match the live generators."""

import pytest

from repro.circuit.bench import write_bench
from repro.gen.frozen import frozen_names, frozen_path, load_frozen
from repro.gen.suite import SUITE, get_circuit
from repro.paths.count import count_paths


def test_every_suite_circuit_is_frozen():
    assert set(frozen_names()) == set(SUITE)


@pytest.mark.parametrize("name", sorted(set(SUITE) - {"c17"}))
def test_frozen_matches_generator(name):
    """Byte-stable: serialising the freshly generated circuit reproduces
    the shipped file exactly.  (c17 is excluded: its frozen file is the
    authentic ISCAS netlist, not our serialisation.)"""
    live = get_circuit(name)
    assert write_bench(live) == frozen_path(name).read_text()


def test_loaded_frozen_equivalent_structure():
    # PO sink gates get renamed by the round trip; structural counts
    # (gates, paths) are invariant.
    for name in ("s880-alu", "apex-a", "xprienc16"):
        live = get_circuit(name)
        frozen = load_frozen(name)
        assert frozen.num_gates == live.num_gates
        assert (
            count_paths(frozen).total_logical
            == count_paths(live).total_logical
        )


def test_unknown_frozen_name():
    with pytest.raises(KeyError):
        load_frozen("nope")
    with pytest.raises(KeyError):
        frozen_path("nope")
