"""Algorithm 2: implicit path enumeration with word-parallel implications.

All logical paths are enumerated implicitly by a DFS that extends path
segments from each PI towards the POs.  At every extension the criterion's
side-input conditions are injected; a contradiction prunes the segment
*and all its extensions* (the prime segment concept, footnote 3 of the
paper).  A path that reaches a PO without contradiction is counted into
``LP^sup``.

Because only local (direct) implications are performed, the check is
one-sided: accepted paths may in truth be unsatisfiable (hence the
superset), but every rejected path is certainly not in the criterion set
— the reported RD-set is sound.

The enumeration core runs over the flat IR (:mod:`repro.circuit.flat`)
with set-of-gates state packed into word-wide bitmasks:

* The DFS state is two integers ``ones`` / ``zeros`` — bit ``g`` set iff
  gate ``g`` is assigned 1 / 0 — plus their maintained complements
  ``no`` / ``nz``, so "which of these bits are new" and "does this
  conflict" are single ``&`` expressions over ``ceil(n / 64)`` words.
* The transitive closure of Algorithm 2's *unconditional* implication
  rules is precomputed per literal (:class:`repro.circuit.flat.
  LiteralClosures`), so injecting a side condition ORs one precomputed
  mask pair instead of propagating gate by gate.  Only the two
  *conditional* rules (last-free-input, all-inputs-non-controlling) need
  a runtime worklist, seeded through value-filtered candidate masks.
* Per-lead conditions are folded at table-build time
  (:class:`_Tables`): one ``(ones, zeros)`` mask pair per (lead, on-path
  value), derived from :func:`repro.classify.conditions.
  packed_side_conditions` — the bitset twin of ``required_side_pins``.
* Implication rules are monotone, so the settled state after an
  extension is a pure function of (entry, state); a per-run memo table
  short-circuits the worklist for states revisited across sibling
  subtrees, which dominates on reconvergent circuits.

The DFS itself keeps explicit iterator/state stacks, so arbitrarily deep
circuits are handled without recursion.  Enumeration order, edge counts
and accept/prune decisions are identical to the reference trail engine
(:mod:`repro.classify.reference`), which the equivalence tests enforce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.circuit.flat import K_NOT, K_PO, K_SIMPLE
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion, packed_side_conditions
from repro.classify.results import ClassificationResult
from repro.errors import ClassifyError
from repro.paths.count import PathCounts, count_paths
from repro.paths.path import LogicalPath
from repro.util.timer import Stopwatch

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.circuit.flat import FlatCircuit, LiteralClosures
    from repro.classify.session import CircuitSession
    from repro.sorting.input_sort import InputSort

#: Branch sentinel: this branch enters a PO — accept the path.
_ACCEPT = object()
#: Memo-table miss sentinel (``None`` is a meaningful cached value).
_MISS = object()


class _Tables:
    """Static per-(circuit, criterion, sort) tables for the bitset kernel.

    ``branches[2 * g + v]`` is a tuple with one *entry* per fanout branch
    of gate ``g`` when its output carries value ``v``:

    ``None``
        statically dead — the branch's condition closure is
        self-contradictory, every visit prunes;
    :data:`_ACCEPT`
        the branch enters a PO — every visit accepts;
    otherwise a 10-slot list ``e``:
        ``e[0]``/``e[1]`` closure masks to force 1 / 0 (side-input
        conditions plus the new on-path output value, all statically
        closed), ``e[2]`` the next branch tuple
        (``branches[2 * dst + newval]``), ``e[3]``/``e[4]`` the
        precomputed complements ``~e[0]``/``~e[1]``, ``e[5]`` whether the
        on-path value is ``dst``'s controlling value, ``e[6]`` the lead,
        ``e[7]`` a dense entry id (memo key), ``e[8]`` the on-path value
        at ``dst``'s output and ``e[9]`` ``dst`` itself.

    ``roots[2 * pi + x]`` is the settled state after assuming PI ``pi``
    carries ``x`` (``None`` if that assumption is already absurd) and
    ``tab[2 * lead + v]`` indexes the same entries by (lead, incoming
    value) for single-path walks.
    """

    def __init__(
        self, circuit: Circuit, criterion: Criterion, sort: InputSort | None
    ) -> None:
        if criterion.needs_sort and sort is None:
            raise ValueError("SIGMA_PI classification requires an input sort")
        flat = circuit.flat
        clo = flat.closures
        self.flat = flat
        self.closures = clo
        n = flat.num_gates
        kind = flat.kind
        ctrl = flat.ctrl
        nc = flat.nc
        out_ctrl = flat.out_ctrl
        out_nc = flat.out_nc
        fanout_start = flat.fanout_start
        fanout_dst = flat.fanout_dst
        fanout_lead = flat.fanout_lead
        lo_ = clo.lit_ones
        lz_ = clo.lit_zeros
        all_masks, ctrl_masks = packed_side_conditions(circuit, criterion, sort)
        tab: list = [None] * (2 * flat.num_leads)
        rows: list[list] = [[] for _ in range(2 * n)]
        entries: list[list] = []
        for g in range(n):
            blo = fanout_start[g]
            bhi = fanout_start[g + 1]
            for v in (0, 1):
                out = rows[2 * g + v]
                for i in range(blo, bhi):
                    dst = fanout_dst[i]
                    lead = fanout_lead[i]
                    k = kind[dst]
                    if k == K_PO:
                        out.append(_ACCEPT)
                        tab[2 * lead + v] = _ACCEPT
                        continue
                    if k == K_SIMPLE:
                        is_ctrl = v == ctrl[dst]
                        mask = ctrl_masks[lead] if is_ctrl else all_masks[lead]
                        newval = out_ctrl[dst] if is_ctrl else out_nc[dst]
                        ncv = nc[dst]
                        L = 2 * dst + newval
                        o = lo_[L]
                        z = lz_[L]
                        while mask:
                            b = mask & -mask
                            mask ^= b
                            L = 2 * (b.bit_length() - 1) + ncv
                            o |= lo_[L]
                            z |= lz_[L]
                    elif k == K_NOT:
                        is_ctrl = False
                        newval = 1 - v
                        L = 2 * dst + newval
                        o = lo_[L]
                        z = lz_[L]
                    else:  # K_WIRE
                        is_ctrl = False
                        newval = v
                        L = 2 * dst + v
                        o = lo_[L]
                        z = lz_[L]
                    if o & z:
                        out.append(None)
                        continue
                    e = [
                        o,
                        z,
                        2 * dst + newval,
                        ~o,
                        ~z,
                        is_ctrl,
                        lead,
                        len(entries),
                        newval,
                        dst,
                    ]
                    entries.append(e)
                    out.append(e)
                    tab[2 * lead + v] = e
        branches = [tuple(row) for row in rows]
        for e in entries:
            e[2] = branches[e[2]]
        self.branches = branches
        self.tab = tab
        self._full_branches: list | None = None
        # Settled root state per (PI, assumed value); None = absurd.
        roots: dict[int, tuple | None] = {}
        lit_bad = clo.lit_bad
        for pi in flat.inputs:
            for v in (0, 1):
                L = 2 * pi + v
                if lit_bad[L]:
                    roots[L] = None
                    continue
                lo = lo_[L]
                lz = lz_[L]
                roots[L] = _settle(
                    flat, clo, lo, lz, clo.lit_no[L], clo.lit_nz[L], lo, lz
                )
        self.roots = roots

    def full_branches(self) -> list:
        """Branch rows for the bookkeeping kernel: identical to
        :attr:`branches` except PO branches carry their lead as a 1-tuple
        so accepted paths can be reconstructed."""
        fb = self._full_branches
        if fb is None:
            flat = self.flat
            kind = flat.kind
            fs = flat.fanout_start
            fd = flat.fanout_dst
            fl = flat.fanout_lead
            fb = list(self.branches)
            for g in range(flat.num_gates):
                blo = fs[g]
                if not any(
                    kind[fd[i]] == K_PO for i in range(blo, fs[g + 1])
                ):
                    continue
                for v in (0, 1):
                    fb[2 * g + v] = tuple(
                        (fl[blo + i],) if e is _ACCEPT else e
                        for i, e in enumerate(self.branches[2 * g + v])
                    )
            self._full_branches = fb
        return fb


def _settle(
    flat: FlatCircuit,
    clo: LiteralClosures,
    ones: int,
    zeros: int,
    no: int,
    nz: int,
    n1: int,
    n0: int,
) -> tuple[int, int, int, int] | None:
    """Drain the conditional-rule worklist after bits ``n1`` / ``n0``
    were newly assigned 1 / 0.

    Returns the settled ``(ones, zeros, no, nz)`` state, or ``None`` on a
    contradiction.  The rule set is monotone, so the fixpoint is unique
    regardless of worklist order.  This out-of-line version serves root
    states, single-path walks and the bookkeeping kernel; the fast kernel
    inlines the same loop.
    """
    ctrl = flat.ctrl
    out_ctrl = flat.out_ctrl
    out_nc = flat.out_nc
    fanin_mask = flat.fanin_mask
    c1 = clo.c1
    c0 = clo.c0
    lit_ones = clo.lit_ones
    lit_zeros = clo.lit_zeros
    lit_no = clo.lit_no
    lit_nz = clo.lit_nz
    lit_bad = clo.lit_bad
    pending = 0
    n1 &= clo.I1
    while n1:
        b = n1 & -n1
        n1 ^= b
        pending |= c1[b.bit_length() - 1]
    n0 &= clo.I0
    while n0:
        b = n0 & -n0
        n0 ^= b
        pending |= c0[b.bit_length() - 1]
    while pending:
        b = pending & -pending
        pending ^= b
        h = b.bit_length() - 1
        fm = fanin_mask[h]
        u = fm & no & nz
        if u:
            # last-free-input rule: fires only when exactly one input is
            # unassigned, the output is already controlled and no input
            # is controlling yet
            if u & (u - 1):
                continue
            if fm & (ones if ctrl[h] else zeros):
                continue
            if not ((ones if out_ctrl[h] else zeros) >> h) & 1:
                continue
            L = 2 * (u.bit_length() - 1) + ctrl[h]
        else:
            # all inputs assigned non-controlling: output forced
            if ((ones if out_nc[h] else zeros) >> h) & 1:
                continue
            if fm & (ones if ctrl[h] else zeros):
                continue
            L = 2 * h + out_nc[h]
        if lit_bad[L]:
            return None
        lo = lit_ones[L]
        lz = lit_zeros[L]
        f1 = lo & no
        f0 = lz & nz
        if f1 or f0:
            if lo & zeros or lz & ones:
                return None
            ones |= lo
            zeros |= lz
            no &= lit_no[L]
            nz &= lit_nz[L]
            f1 &= clo.I1
            while f1:
                b2 = f1 & -f1
                f1 ^= b2
                pending |= c1[b2.bit_length() - 1]
            f0 &= clo.I0
            while f0:
                b2 = f0 & -f0
                f0 ^= b2
                pending |= c0[b2.bit_length() - 1]
    return (ones, zeros, no, nz)


def _run_fast(
    tables: _Tables, max_accepted: int | None
) -> tuple[int, int, list[int]]:
    """The hot kernel: counts only (no per-path bookkeeping).

    Everything is local variables and int ops; the conditional-rule
    worklist of :func:`_settle` is inlined.  The conflict check MUST
    precede the new-bits test when merging an entry — bits that are all
    "already known" can still sit on the wrong side.
    """
    flat = tables.flat
    clo = tables.closures
    # array('b') indexing is measurably slower than list indexing in the
    # candidate loop; snapshot the hot tables as plain lists
    ctrl = list(flat.ctrl)
    out_ctrl = list(flat.out_ctrl)
    out_nc = list(flat.out_nc)
    fanin_mask = flat.fanin_mask
    lit_ones = clo.lit_ones
    lit_zeros = clo.lit_zeros
    lit_no = clo.lit_no
    lit_nz = clo.lit_nz
    lit_bad = clo.lit_bad
    c1 = clo.c1
    c0 = clo.c0
    I1 = clo.I1
    I0 = clo.I0
    branches = tables.branches
    roots = tables.roots
    limit = float("inf") if max_accepted is None else max_accepted
    memo: dict = {}
    accepted = 0
    edges = 0
    maxd = flat.num_gates + 2
    it_stk: list = [None] * maxd
    st_stk: list = [None] * maxd
    ones = zeros = 0
    no = nz = -1
    for pi in flat.inputs:
        for x in (1, 0):
            st = roots[2 * pi + x]
            if st is None:
                continue
            ones, zeros, no, nz = st
            d = 0
            it_stk[0] = iter(branches[2 * pi + x])
            st_stk[0] = None
            while d >= 0:
                e = next(it_stk[d], False)
                if e is False:
                    s = st_stk[d]
                    if s is not None:
                        ones, zeros, no, nz = s
                    d -= 1
                    continue
                edges += 1
                if e is None:
                    continue
                if e is _ACCEPT:
                    accepted += 1
                    if accepted > limit:
                        raise ClassifyError(
                            f"more than {max_accepted} paths accepted; "
                            "raise max_accepted or use a smaller circuit"
                        )
                    continue
                o = e[0]
                z = e[1]
                t1 = o & no
                t0 = z & nz
                if t1 or t0:
                    kt = (e[7], ones, zeros)
                    r = memo.get(kt, _MISS)
                    if r is _MISS:
                        if o & zeros or z & ones:
                            memo[kt] = None
                            continue
                        snap = (ones, zeros, no, nz)
                        ones |= o
                        zeros |= z
                        no &= e[3]
                        nz &= e[4]
                        pending = 0
                        t1 &= I1
                        while t1:
                            b = t1 & -t1
                            t1 ^= b
                            pending |= c1[b.bit_length() - 1]
                        t0 &= I0
                        while t0:
                            b = t0 & -t0
                            t0 ^= b
                            pending |= c0[b.bit_length() - 1]
                        ok = True
                        while pending:
                            b = pending & -pending
                            pending ^= b
                            h = b.bit_length() - 1
                            fm = fanin_mask[h]
                            u = fm & no & nz
                            if u:
                                if u & (u - 1):
                                    continue
                                if fm & (ones if ctrl[h] else zeros):
                                    continue
                                if (
                                    not ((ones if out_ctrl[h] else zeros) >> h)
                                    & 1
                                ):
                                    continue
                                L = 2 * (u.bit_length() - 1) + ctrl[h]
                            else:
                                if ((ones if out_nc[h] else zeros) >> h) & 1:
                                    continue
                                if fm & (ones if ctrl[h] else zeros):
                                    continue
                                L = 2 * h + out_nc[h]
                            if lit_bad[L]:
                                ok = False
                                break
                            lo = lit_ones[L]
                            lz = lit_zeros[L]
                            f1 = lo & no
                            f0 = lz & nz
                            if f1 or f0:
                                if lo & zeros or lz & ones:
                                    ok = False
                                    break
                                ones |= lo
                                zeros |= lz
                                no &= lit_no[L]
                                nz &= lit_nz[L]
                                f1 &= I1
                                while f1:
                                    b2 = f1 & -f1
                                    f1 ^= b2
                                    pending |= c1[b2.bit_length() - 1]
                                f0 &= I0
                                while f0:
                                    b2 = f0 & -f0
                                    f0 ^= b2
                                    pending |= c0[b2.bit_length() - 1]
                        if not ok:
                            memo[kt] = None
                            ones, zeros, no, nz = snap
                            continue
                        memo[kt] = (ones, zeros, no, nz)
                        d += 1
                        it_stk[d] = iter(e[2])
                        st_stk[d] = snap
                    elif r is None:
                        continue
                    else:
                        st_stk[d + 1] = (ones, zeros, no, nz)
                        d += 1
                        ones, zeros, no, nz = r
                        it_stk[d] = iter(e[2])
                else:
                    # nothing new to assign: extension trivially consistent
                    d += 1
                    it_stk[d] = iter(e[2])
                    st_stk[d] = None
    return accepted, edges, []


def _run_full(
    tables: _Tables,
    collect_lead_counts: bool,
    max_accepted: int | None,
    on_path: Callable[[LogicalPath], None] | None,
) -> tuple[int, int, list[int]]:
    """The bookkeeping kernel: same traversal as :func:`_run_fast`, plus
    the lead/controlling stacks needed for ``lead_ctrl_counts`` and
    ``on_path`` reconstruction.  The memo only short-circuits state
    computation, never the traversal, so per-path bookkeeping stays
    exact."""
    from repro.paths.path import PhysicalPath  # local: rarely used

    flat = tables.flat
    clo = tables.closures
    branches = tables.full_branches()
    roots = tables.roots
    limit = float("inf") if max_accepted is None else max_accepted
    memo: dict = {}
    accepted = 0
    edges = 0
    lead_counts = [0] * flat.num_leads if collect_lead_counts else []
    ctrl_stack: list[tuple[int, bool]] = []
    path_stack: list[int] = []
    maxd = flat.num_gates + 2
    it_stk: list = [None] * maxd
    st_stk: list = [None] * maxd
    for pi in flat.inputs:
        for x in (1, 0):
            st = roots[2 * pi + x]
            if st is None:
                continue
            ones, zeros, no, nz = st
            d = 0
            it_stk[0] = iter(branches[2 * pi + x])
            st_stk[0] = None
            while d >= 0:
                e = next(it_stk[d], False)
                if e is False:
                    s = st_stk[d]
                    if s is not None:
                        ones, zeros, no, nz = s
                    if d > 0:
                        path_stack.pop()
                        ctrl_stack.pop()
                    d -= 1
                    continue
                edges += 1
                if e is None:
                    continue
                if e.__class__ is tuple:  # (lead,) into a PO: accept
                    accepted += 1
                    if accepted > limit:
                        raise ClassifyError(
                            f"more than {max_accepted} paths accepted; "
                            "raise max_accepted or use a smaller circuit"
                        )
                    if collect_lead_counts:
                        for l2, is_c in ctrl_stack:
                            if is_c:
                                lead_counts[l2] += 1
                    if on_path is not None:
                        on_path(
                            LogicalPath(
                                PhysicalPath(tuple(path_stack) + (e[0],)), x
                            )
                        )
                    continue
                o = e[0]
                z = e[1]
                t1 = o & no
                t0 = z & nz
                if t1 or t0:
                    kt = (e[7], ones, zeros)
                    r = memo.get(kt, _MISS)
                    if r is _MISS:
                        if o & zeros or z & ones:
                            memo[kt] = None
                            continue
                        snap = (ones, zeros, no, nz)
                        r = _settle(
                            flat, clo, ones | o, zeros | z, no & e[3],
                            nz & e[4], t1, t0,
                        )
                        memo[kt] = r
                        if r is None:
                            continue
                        st_stk[d + 1] = snap
                    elif r is None:
                        continue
                    else:
                        st_stk[d + 1] = (ones, zeros, no, nz)
                    d += 1
                    ones, zeros, no, nz = r
                    it_stk[d] = iter(branches[2 * e[9] + e[8]])
                else:
                    d += 1
                    it_stk[d] = iter(branches[2 * e[9] + e[8]])
                    st_stk[d] = None
                ctrl_stack.append((e[6], e[5]))
                path_stack.append(e[6])
    return accepted, edges, lead_counts


def _run(
    circuit: Circuit,
    criterion: Criterion,
    tables: _Tables,
    counts: PathCounts,
    collect_lead_counts: bool,
    max_accepted: int | None,
    on_path: Callable[[LogicalPath], None] | None,
) -> ClassificationResult:
    """The enumeration core shared by :func:`classify` and
    :class:`~repro.classify.session.CircuitSession`: dispatch to the
    counting or bookkeeping kernel and wrap the result."""
    with Stopwatch() as sw:
        if collect_lead_counts or on_path is not None:
            accepted, edges, lead_counts = _run_full(
                tables, collect_lead_counts, max_accepted, on_path
            )
        else:
            accepted, edges, lead_counts = _run_fast(tables, max_accepted)
    return ClassificationResult(
        circuit_name=circuit.name,
        criterion=criterion,
        total_logical=counts.total_logical,
        accepted=accepted,
        elapsed=sw.elapsed,
        lead_ctrl_counts=lead_counts,
        edges_visited=edges,
    )


def classify(
    circuit: Circuit,
    criterion: Criterion,
    sort: InputSort | None = None,
    collect_lead_counts: bool = False,
    max_accepted: int | None = None,
    on_path: Callable[[LogicalPath], None] | None = None,
    counts: PathCounts | None = None,
    session: CircuitSession | None = None,
) -> ClassificationResult:
    """Count ``|LP^sup|`` for ``criterion`` over all logical paths.

    Parameters
    ----------
    sort:
        the input sort π; required for ``Criterion.SIGMA_PI``, ignored
        otherwise.
    collect_lead_counts:
        additionally accumulate, per lead, the number of accepted logical
        paths whose final value at the lead is the destination gate's
        controlling value (``|·_c^sup(l)|`` — the cost measures of
        Algorithm 3).  Costs O(path length) extra per accepted path.
    max_accepted:
        abort with :class:`~repro.errors.ClassifyError` (a
        ``RuntimeError`` subclass) once more than this many paths
        are accepted (guard against accidentally enumerating a huge
        circuit; RD-heavy circuits stay cheap regardless of total path
        count thanks to prime-segment pruning).
    on_path:
        optional callback invoked with every accepted
        :class:`~repro.paths.path.LogicalPath` (slow; for debugging and
        small-circuit set extraction).
    counts:
        precomputed :func:`~repro.paths.count.count_paths` result for
        ``circuit``; pass it when the caller already has the exact
        counts to avoid recomputing them.
    session:
        a :class:`~repro.classify.session.CircuitSession` for
        ``circuit``; when given, the per-(criterion, sort) tables and
        the path counts all come from (and warm) the session's caches.

    ``circuit`` may be anything :func:`repro.loading.as_core` resolves —
    a ``ScanCircuit`` or a ``.bench`` path work as well as a ``Circuit``.
    """
    if not isinstance(circuit, Circuit):
        from repro.loading import as_core

        circuit = as_core(circuit)
    if session is not None:
        if session.circuit is not circuit:
            raise ValueError("session was created for a different circuit")
        return session.classify(
            criterion,
            sort=sort,
            collect_lead_counts=collect_lead_counts,
            max_accepted=max_accepted,
            on_path=on_path,
        )
    tables = _Tables(circuit, criterion, sort)
    if counts is None:
        counts = count_paths(circuit)
    return _run(
        circuit,
        criterion,
        tables,
        counts,
        collect_lead_counts,
        max_accepted,
        on_path,
    )


def check_logical_path(
    circuit: Circuit,
    criterion: Criterion,
    logical_path: LogicalPath,
    sort: InputSort | None = None,
) -> bool:
    """Local-implication check of one explicit logical path.

    Returns True if the path is in ``LP^sup`` for the criterion (i.e. the
    conditions did not contradict under direct implications); False means
    the path is provably outside the criterion set.
    """
    tables = _Tables(circuit, criterion, sort)
    return check_logical_path_tables(circuit, tables, logical_path)


def check_logical_path_tables(
    circuit: Circuit,
    tables: _Tables,
    logical_path: LogicalPath,
) -> bool:
    """:func:`check_logical_path` against prebuilt ``_Tables``.

    Building the condition tables dominates a single-path check; callers
    that screen many paths of one circuit (signoff, selection) should
    build the tables once — e.g. via ``session.tables(criterion, sort)``
    — and call this per path.
    """
    flat = tables.flat
    clo = tables.closures
    pi = logical_path.path.source(circuit)
    val = logical_path.final_value
    L = 2 * pi + val
    if clo.lit_bad[L]:
        return False
    lo = clo.lit_ones[L]
    lz = clo.lit_zeros[L]
    st = _settle(flat, clo, lo, lz, clo.lit_no[L], clo.lit_nz[L], lo, lz)
    if st is None:
        return False
    ones, zeros, no, nz = st
    tab = tables.tab
    for lead in logical_path.path.leads:
        e = tab[2 * lead + val]
        if e is _ACCEPT:
            return True
        if e is None:
            return False
        o = e[0]
        z = e[1]
        t1 = o & no
        t0 = z & nz
        if t1 or t0:
            if o & zeros or z & ones:
                return False
            st = _settle(
                flat, clo, ones | o, zeros | z, no & e[3], nz & e[4], t1, t0
            )
            if st is None:
                return False
            ones, zeros, no, nz = st
        val = e[8]
    raise ValueError("path does not terminate at a PO")
