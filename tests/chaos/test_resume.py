"""Checkpoint/resume under faults: a run killed partway through must be
resumable with ``--resume`` semantics — only missing rows recomputed,
final tables byte-identical to a straight-through run."""

import json

import pytest

from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.experiments import table1
from repro.experiments.harness import run_table1_rows
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.experiments.sweep import sweep_family
from repro.gen.adders import ripple_carry_adder

pytestmark = pytest.mark.chaos


def _circuits():
    return [paper_example_circuit(), mux_circuit()]


class TestTable1Resume:
    def test_resume_from_partial_checkpoint(self, tmp_path):
        """Simulate a run killed after the first row: the checkpoint
        holds one circuit; the resumed run computes only the other and
        the rendered table matches a straight-through run byte for
        byte."""
        ckpt = tmp_path / "table1.jsonl"
        run_table1_rows(_circuits()[:1], checkpoint=str(ckpt))
        assert len(ckpt.read_text().splitlines()) == 1

        resumed, _ = table1.run(
            _circuits(), checkpoint=str(ckpt), resume=True
        )
        straight, _ = table1.run(_circuits(), jobs=1)
        assert resumed.render() == straight.render()
        # the already-done circuit was not recomputed → not re-recorded
        records = ckpt.read_text().splitlines()
        assert len(records) == 2
        assert len({json.loads(line)["key"] for line in records}) == 2

    def test_torn_tail_line_is_recomputed(self, tmp_path):
        """A SIGKILL can tear the last JSONL line; resume must skip it
        and recompute that row rather than crash or trust garbage."""
        ckpt = tmp_path / "table1.jsonl"
        run_table1_rows(_circuits(), checkpoint=str(ckpt))
        lines = ckpt.read_text().splitlines()
        ckpt.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        resumed, _ = table1.run(
            _circuits(), checkpoint=str(ckpt), resume=True
        )
        straight, _ = table1.run(_circuits(), jobs=1)
        assert resumed.render() == straight.render()

    def test_without_resume_flag_checkpoint_is_ignored_for_skipping(
        self, tmp_path
    ):
        ckpt = tmp_path / "table1.jsonl"
        run_table1_rows(_circuits(), checkpoint=str(ckpt))
        run_table1_rows(_circuits(), checkpoint=str(ckpt))  # no resume
        # recomputed and re-recorded: 2 circuits × 2 runs
        assert len(ckpt.read_text().splitlines()) == 4


def _kill_worker(label, attempt):
    import os

    os._exit(3)


class TestSweepResume:
    def test_killed_sweep_resumes_only_missing_points(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        straight = sweep_family(ripple_carry_adder, [2, 3, 4])

        # "kill" the run partway: points 2 and 3 land in the checkpoint,
        # then the run dies before measuring 4
        sweep_family(ripple_carry_adder, [2, 3], checkpoint=str(ckpt))

        built = []

        def family(n):
            built.append(n)
            return ripple_carry_adder(n)

        resumed = sweep_family(
            family, [2, 3, 4], checkpoint=str(ckpt), resume=True
        )
        assert built == [4]  # checkpointed circuits are not even built
        assert [
            (p.parameter, p.gates, p.total_logical, p.accepted)
            for p in resumed
        ] == [
            (p.parameter, p.gates, p.total_logical, p.accepted)
            for p in straight
        ]

    def test_failed_points_are_not_checkpointed(self, tmp_path):
        """A point that ends as RowFailure must not be recorded — a
        resume should retry it, not trust the failure."""
        ckpt = tmp_path / "sweep.jsonl"
        runner = TaskRunner(
            jobs=2,
            fault_hook=_kill_worker,
            max_retries=0,
            backoff_base=0.01,
            degrade_in_process=False,
        )
        broken = sweep_family(
            ripple_carry_adder, [2, 3], checkpoint=str(ckpt), runner=runner
        )
        assert all(isinstance(p, RowFailure) for p in broken)
        assert not ckpt.exists() or ckpt.read_text() == ""

        resumed = sweep_family(
            ripple_carry_adder, [2, 3], checkpoint=str(ckpt), resume=True
        )
        straight = sweep_family(ripple_carry_adder, [2, 3])
        assert [
            (p.parameter, p.total_logical, p.accepted) for p in resumed
        ] == [(p.parameter, p.total_logical, p.accepted) for p in straight]
