"""The daemon's ``signoff`` op: robust-path timing queries over the wire."""

import pytest

from repro.circuit.bench import parse_bench
from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
from repro.errors import RemoteError
from repro.obs import reset_registry
from repro.service.client import ServiceClient
from repro.signoff import signoff, signoff_core, signoff_remote
from repro.signoff.report import SignoffRow
from repro.timing.annotate import write_delay_annotations
from repro.timing.delays import random_delays

from tests.service.test_server import _unix_server, harness  # noqa: F401

BENCH = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n = NOT(b)
m = AND(a, n)
y = OR(m, c)
"""


@pytest.fixture(autouse=True)
def clean_registry():
    reset_registry()
    yield
    reset_registry()


class TestSignoffOp:
    def test_suite_circuit_round_trip(self, harness):  # noqa: F811
        h = _unix_server(harness)
        events = []
        with ServiceClient.connect(h.address) as client:
            result = client.signoff(
                circuit="c17", k=5, on_event=lambda e: events.append(e)
            )
        assert result["circuit"] == "c17"
        assert result["mode"] == "k"
        assert result["k"] == 5
        assert result["delays_digest"].startswith("rdly1:")
        assert result["fingerprint"].startswith("rdfp1:")
        delays = [row["delay"] for row in result["rows"]]
        assert delays == sorted(delays, reverse=True)
        assert len(delays) <= 5
        assert result["counters"]["robust_confirmed"] >= len(delays)
        starts = [e for e in events if e.get("event") == "start"]
        assert len(starts) == 1

    def test_explicit_delays_match_local_run(self, harness):  # noqa: F811
        h = _unix_server(harness)
        circuit = parse_bench(BENCH, name="tiny")
        delays = random_delays(circuit, seed=7)
        local_rows, _c, _s = signoff_core(circuit, delays, k=10)
        with ServiceClient.connect(h.address) as client:
            result = client.signoff(
                circuit=circuit,
                k=10,
                delays=write_delay_annotations(delays),
            )
        remote_rows = [SignoffRow.from_table_row(r) for r in result["rows"]]
        assert remote_rows == local_rows

    def test_partial_delays_rejected(self, harness):  # noqa: F811
        h = _unix_server(harness)
        circuit = parse_bench(BENCH, name="tiny")
        with ServiceClient.connect(h.address) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.signoff(circuit=circuit, delays="n 1.0 1.0\n")
        assert excinfo.value.error_type == "BenchParseError"

    def test_remote_fanout_matches_local(self, harness):  # noqa: F811
        h = _unix_server(harness)
        scan = parse_sequential_bench(S27_LIKE, name="s27")
        local = signoff(scan, k=6, seed=0)
        with ServiceClient.connect(h.address) as client:
            remote = signoff_remote(scan, client, k=6, seed=0)
        assert remote.table_bytes() == local.table_bytes()
        assert remote.delays_digest == local.delays_digest

    def test_warm_store_serves_second_request(self, harness):  # noqa: F811
        h = _unix_server(harness, store=str(harness.tmp_path / "s.sqlite"))
        with ServiceClient.connect(h.address) as client:
            cold = client.signoff(circuit="c17", k=3)
            warm = client.signoff(circuit="c17", k=3)
        assert cold["source"] == "computed"
        assert warm["source"] == "store"
        assert warm["rows"] == cold["rows"]

    def test_slack_mode_and_validation(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            result = client.signoff(circuit="c17", slack=0.0)
            assert result["mode"] == "slack"
            with pytest.raises(RemoteError) as excinfo:
                client.signoff(circuit="c17", k=2, slack=1.0)
            assert excinfo.value.error_type == "ProtocolError"
            with pytest.raises(RemoteError) as excinfo:
                client.signoff(circuit="c17", k=0)
            assert excinfo.value.error_type == "ProtocolError"

    def test_exact_rows_identical(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            fast = client.signoff(circuit="c17", k=8)
            exact = client.signoff(circuit="c17", k=8, exact=True)
        assert exact["rows"] == fast["rows"]

    def test_op_counted_in_metrics(self, harness):  # noqa: F811
        h = _unix_server(harness)
        with ServiceClient.connect(h.address) as client:
            client.signoff(circuit="c17", k=3)
            counters = client.metrics()["metrics"]["counters"]
        assert counters["service.op.signoff"] == 1
        assert counters["signoff.robust_confirmed"] >= 1
