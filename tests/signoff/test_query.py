"""Signoff correctness: differential against brute force, fan-out
equivalence, job-count determinism, and the store contract."""

import pytest

from repro.circuit.sequential import S27_LIKE, parse_sequential_bench
from repro.delaytest.testability import is_robustly_testable
from repro.errors import SignoffError
from repro.paths.enumerate import enumerate_logical_paths
from repro.signoff import (
    DEFAULT_K,
    SignoffReport,
    merge_rows,
    signoff,
    signoff_core,
)
from repro.signoff.query import row_from_path
from repro.timing.annotate import materialize_delays
from repro.timing.delays import random_delays
from repro.timing.pathdelay import logical_path_delay


def brute_force_rows(circuit, delays, k=None, slack=None):
    """The spec: every robustly-testable logical path, slowest first in
    canonical order, truncated/thresholded like the query."""
    rows = []
    for lp in enumerate_logical_paths(circuit):
        if not is_robustly_testable(circuit, lp):
            continue
        delay = logical_path_delay(circuit, lp, delays)
        if slack is not None and delay < slack:
            continue
        rows.append(row_from_path(circuit, delay, lp))
    rows.sort(key=lambda row: row.sort_key())
    if k is not None:
        rows = rows[:k]
    return rows


class TestDifferential:
    def test_k_mode_matches_brute_force(self, small_circuits):
        for circuit in small_circuits:
            for seed in range(2):
                delays = random_delays(circuit, seed=seed)
                for k in (1, 3, 100):
                    rows, _counters, source = signoff_core(
                        circuit, delays, k=k
                    )
                    assert source == "computed"
                    assert rows == brute_force_rows(circuit, delays, k=k), (
                        circuit.name, seed, k
                    )

    def test_slack_mode_matches_brute_force(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=5)
            all_rows = brute_force_rows(circuit, delays, slack=0.0)
            cut = (
                all_rows[len(all_rows) // 2].delay if all_rows else 1.0
            )
            for slack in (0.0, cut):
                rows, _counters, source = signoff_core(
                    circuit, delays, slack=slack
                )
                assert rows == brute_force_rows(
                    circuit, delays, slack=slack
                ), (circuit.name, slack)

    def test_exact_mode_same_rows_different_stages(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=1)
            fast_rows, fast_counters, _ = signoff_core(circuit, delays, k=50)
            exact_rows, exact_counters, _ = signoff_core(
                circuit, delays, k=50, exact=True
            )
            assert exact_rows == fast_rows, circuit.name
            # the oracle can only take refutations away from the final
            # robust-test stage, never change the confirmed set
            assert (
                exact_counters["robust_confirmed"]
                == fast_counters["robust_confirmed"]
            )
            assert exact_counters["robust_refuted"] <= fast_counters[
                "robust_refuted"
            ]

    def test_query_validation(self, example_circuit):
        with pytest.raises(ValueError, match="not both"):
            signoff_core(example_circuit, k=3, slack=1.0)
        with pytest.raises(ValueError, match=">= 1"):
            signoff_core(example_circuit, k=0)

    def test_candidate_budget_guard(self, example_circuit):
        delays = random_delays(example_circuit)
        with pytest.raises(SignoffError, match="candidate"):
            signoff_core(example_circuit, delays, slack=0.0, max_candidates=1)


class TestScanFanOut:
    @pytest.fixture
    def scan(self):
        return parse_sequential_bench(S27_LIKE, name="s27")

    def test_domain_fanout_equals_whole_core(self, scan):
        delays = materialize_delays(scan.core, None, seed=0)
        whole_rows, _c, _s = signoff_core(scan.core, delays, k=8)
        report = signoff(scan, k=8, seed=0)
        assert list(report.rows) == whole_rows
        assert report.mode == "k"
        assert set(report.domains) == {
            scan.core.gate_name(po) for po in scan.core.outputs
        }

    def test_jobs_do_not_change_bytes(self, scan):
        serial = signoff(scan, k=6, seed=3, jobs=1)
        fanned = signoff(scan, k=6, seed=3, jobs=2)
        assert serial.table_bytes() == fanned.table_bytes()

    def test_default_k(self, scan):
        report = signoff(scan)
        assert report.k == DEFAULT_K
        assert isinstance(report, SignoffReport)

    def test_slack_mode_over_domains(self, scan):
        delays = materialize_delays(scan.core, None, seed=0)
        whole_rows, _c, _s = signoff_core(scan.core, delays, slack=6.0)
        report = signoff(scan, slack=6.0, seed=0)
        assert list(report.rows) == whole_rows


class TestStore:
    def test_cold_then_warm_identical(self, tmp_path, small_circuits):
        store = str(tmp_path / "signoff.sqlite")
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=2)
            cold_rows, _c, cold_src = signoff_core(
                circuit, delays, k=5, store=store
            )
            warm_rows, warm_counters, warm_src = signoff_core(
                circuit, delays, k=5, store=store
            )
            assert (cold_src, warm_src) == ("computed", "store")
            assert warm_rows == cold_rows
            assert warm_counters["candidates"] == 0  # no enumeration

    def test_key_separates_delays_and_query(self, tmp_path, example_circuit):
        store = str(tmp_path / "signoff.sqlite")
        delays = random_delays(example_circuit, seed=0)
        other = random_delays(example_circuit, seed=9)
        signoff_core(example_circuit, delays, k=5, store=store)
        _rows, _c, src = signoff_core(example_circuit, other, k=5, store=store)
        assert src == "computed"  # different delays: different key
        _rows, _c, src = signoff_core(example_circuit, delays, k=2, store=store)
        assert src == "computed"  # different k: different key
        _rows, _c, src = signoff_core(example_circuit, delays, k=5, store=store)
        assert src == "store"

    def test_report_store_provenance(self, tmp_path):
        scan = parse_sequential_bench(S27_LIKE, name="s27")
        store = str(tmp_path / "signoff.sqlite")
        cold = signoff(scan, k=4, store=store)
        warm = signoff(scan, k=4, store=store)
        assert set(cold.sources.values()) == {"computed"}
        assert set(warm.sources.values()) == {"store"}
        assert warm.table_bytes() == cold.table_bytes()


class TestMergeRows:
    def test_merge_is_sort_then_truncate(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=4)
            rows = brute_force_rows(circuit, delays)
            split = [rows[0::2], rows[1::2]]
            assert list(merge_rows(split, 3)) == rows[:3]
            assert list(merge_rows(split, None)) == rows
