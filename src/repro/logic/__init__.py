"""Logic-value substrate: ternary algebra, simulation, local implications."""

from repro.logic.values import X, ternary_gate_eval
from repro.logic.simulate import simulate, simulate_ternary, output_values, truth_table
from repro.logic.implication import ImplicationEngine, Conflict

__all__ = [
    "X",
    "ternary_gate_eval",
    "simulate",
    "simulate_ternary",
    "output_values",
    "truth_table",
    "ImplicationEngine",
    "Conflict",
]
