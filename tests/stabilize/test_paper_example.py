"""Regression suite: every numbered fact the paper states about its
running example circuit, re-derived mechanically.

This is the repository's ground-truth anchor — if the example circuit or
any core algorithm drifts, these tests name the exact violated claim.
"""

from repro.baseline.exact_assignment import baseline_rd
from repro.baseline.leafdag_rd import leafdag_rd_paths
from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.classify.exact import exact_path_set
from repro.classify.exact import testability_counts as hierarchy_counts
from repro.delaytest.testability import is_robustly_testable
from repro.experiments.figures import example2_sort, example3_sort
from repro.paths.count import count_paths
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic2_sort
from repro.stabilize.assignment import assignment_from_sort
from repro.stabilize.system import all_stabilizing_systems


def test_fact_8_logical_paths(example_circuit):
    assert count_paths(example_circuit).total_logical == 8


def test_fact_three_stabilizing_systems_for_111(example_circuit):
    """Figure 1: exactly three stabilizing systems for input 111."""
    systems = list(
        all_stabilizing_systems(example_circuit, example_circuit.outputs[0], (1, 1, 1))
    )
    assert len(systems) == 3


def test_fact_example2_selects_6_paths(example_circuit):
    """Example 2: |LP(σ)| = 6."""
    sigma = assignment_from_sort(example_circuit, example2_sort(example_circuit))
    assert len(sigma.logical_paths()) == 6


def test_fact_example2_exactly_one_untestable(example_circuit):
    """Example 2/3: exactly one of the 6 paths is not robustly testable
    (fault coverage 5/6)."""
    sigma = assignment_from_sort(example_circuit, example2_sort(example_circuit))
    untestable = [
        lp
        for lp in sigma.logical_paths()
        if not is_robustly_testable(example_circuit, lp)
    ]
    assert len(untestable) == 1
    (lp,) = untestable
    assert lp.describe(example_circuit) == "b -> g_and -> g_or -> out [1->0]"


def test_fact_example3_optimum_five_paths_full_coverage(example_circuit):
    """Example 3 / Figure 4: σ' selects exactly the 5 robustly testable
    paths — 100% fault coverage."""
    sigma = assignment_from_sort(example_circuit, example3_sort(example_circuit))
    paths = sigma.logical_paths()
    assert len(paths) == 5
    assert all(is_robustly_testable(example_circuit, lp) for lp in paths)


def test_fact_exactly_five_robustly_testable(example_circuit):
    robust = [
        lp
        for lp in enumerate_logical_paths(example_circuit)
        if is_robustly_testable(example_circuit, lp)
    ]
    assert len(robust) == 5


def test_fact_t_and_fs_counts(example_circuit):
    """T(C) = 5 non-robustly testable paths; FS(C) = all 8 paths."""
    t_count, fs_count, total = hierarchy_counts(example_circuit)
    assert (t_count, fs_count, total) == (5, 8, 8)


def test_fact_figure5_optimum_input_sort(example_circuit):
    """Figure 5: an input sort recovering the 5-path optimum exists, and
    Heuristic 2 finds one."""
    sort = heuristic2_sort(example_circuit)
    result = classify(example_circuit, Criterion.SIGMA_PI, sort=sort)
    assert result.accepted == 5
    assert result.rd_count == 3


def test_fact_baseline_optimum_is_five(example_circuit):
    result = baseline_rd(example_circuit, method="exact")
    assert result.selected == 5
    assert result.rd_count == 3


def test_fact_leafdag_identifies_max_rd_set(example_circuit):
    rd = leafdag_rd_paths(example_circuit, example_circuit.outputs[0])
    described = {lp.describe(example_circuit) for lp in rd}
    assert described == {
        "b -> g_and -> g_or -> out [0->1]",
        "b -> g_and -> g_or -> out [1->0]",
        "c -> g_and -> g_or -> out [0->1]",
    }


def test_fact_cA_falling_is_in_every_lp_sigma(example_circuit):
    """The falling path through the AND from c is forced into every
    LP(σ): under v=010 the OR is uncontrolled and the AND's only
    controlling input is c.  (This is the counterexample that rules out
    naive iterated redundancy removal — see baseline/leafdag_rd.py.)"""
    sigma_exact = exact_path_set(example_circuit, Criterion.SIGMA_PI,
                                 example3_sort(example_circuit))
    target = [
        lp
        for lp in sigma_exact
        if lp.describe(example_circuit) == "c -> g_and -> g_or -> out [1->0]"
    ]
    assert target, "cA falling missing from the optimal LP(sigma)"
