"""Per-output-cone content fingerprints (``rdcfp1:``) and the cone index.

The paper's classification (Algorithm 2) is purely cone-local: whether a
lead is robust-dependent is decided entirely inside the transitive fanin
of one output cone (side-input conditions only ever constrain gates on
and beside the path, all of which lie in the cone).  The whole-circuit
store fingerprint (``rdfp1:``) therefore over-keys cached results — a
one-gate edit invalidates every row even though most cones are
untouched.  This module provides the finer key.

Two artifacts are computed, both in single topological passes over the
shared :class:`~repro.circuit.flat.FlatCircuit` CSR:

* **Per-gate fold hashes** — each gate's hash folds its type with its
  fanin gates' hashes in pin order.  A gate's fold hash is stable as
  long as its transitive fanin is untouched, which makes the hashes
  ideal for *delta reporting*: the gates responsible for a dirty cone
  are exactly the multiset difference of the two cones' fold hashes.
* **Cone membership bitsets** — ``closure[g] = bit(g) | OR(closure[s])``
  over the fanin CSR; the PO rows are retained as big-int gate masks.

The **cone fingerprint** itself is deliberately *not* the PO's fold
hash.  Fold hashes are blind to DAG sharing: ``AND(a, a)`` through two
distinct branches of one stem and ``AND(a1, a2)`` over two structurally
equal but distinct cones fold identically, yet classify differently (a
shared stem constrains both pins at once).  Keying stored results by a
fold hash would violate the store's never-wrong contract.  Instead the
fingerprint hashes a canonical rooted-DAG *encoding*: a pin-order DFS
from the PO that numbers gates at first visit and emits back-references
on revisits.  The encoding determines the cone up to gate renaming and
declaration order (isomorphism-insensitive), distinguishes shared from
copied subtrees, and never looks outside the cone (untouched-fanin
stability).

``cone_index(circuit)`` builds everything once and caches it on the
circuit; :meth:`~repro.circuit.netlist.Circuit.replace_gate` invalidates
the cache together with ``circuit.flat``.  The build is timed under
``span("conefp")`` so the ``span.conefp`` histogram tracks its cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.obs import span
from repro.store.fingerprint import CONE_SCHEMA_VERSION, _h

__all__ = [
    "CONE_SCHEMA_VERSION",
    "Cone",
    "ConeIndex",
    "cone_fingerprints",
    "cone_index",
]

_PREFIX = f"rdcfp{CONE_SCHEMA_VERSION}"

#: Gate-type code -> label bytes, indexed by GateType value.
_TYPE_NAME_BYTES = {t.value: t.name.encode() for t in GateType}


@dataclass(frozen=True)
class Cone:
    """One output cone of the indexed circuit."""

    po: int  #: PO gate id in the host circuit
    output: str  #: PO gate name (the stable handle across edits)
    fingerprint: str  #: canonical ``rdcfp1:`` content hash of the cone
    mask: int  #: gate-membership bitset over host gate ids

    @property
    def num_gates(self) -> int:
        return self.mask.bit_count()

    def gates(self) -> Iterator[int]:
        """Host gate ids of the cone, ascending."""
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low


@dataclass(frozen=True)
class ConeIndex:
    """All cones of one frozen circuit, plus the per-gate fold hashes."""

    circuit: Circuit
    gate_hash: "tuple[bytes, ...]"  #: per-gate fold hash, host gate order
    cones: "tuple[Cone, ...]"  #: one per PO, in circuit output order
    build_seconds: float

    def cone(self, output: str) -> Cone:
        """The cone whose PO gate is named ``output`` (KeyError if none)."""
        for cone in self.cones:
            if cone.output == output:
                return cone
        raise KeyError(f"no output cone named {output!r}")

    def fingerprints(self) -> "Dict[str, str]":
        """``{output name: cone fingerprint}`` for every PO."""
        return {cone.output: cone.fingerprint for cone in self.cones}

    def gate_hash_names(self, cone: Cone) -> "Dict[bytes, list[str]]":
        """Fold hash -> gate names inside ``cone`` (for delta reports)."""
        out: "Dict[bytes, list[str]]" = {}
        for gid in cone.gates():
            out.setdefault(self.gate_hash[gid], []).append(
                self.circuit.gate_name(gid)
            )
        return out


def _fold_hashes(flat) -> "list[bytes]":
    """Per-gate fold hashes in one topological pass over the fanin CSR."""
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    type_code = flat.type_code
    names = _TYPE_NAME_BYTES
    hashes: "list[bytes]" = [b""] * flat.num_gates
    for gid in flat.topo:
        hashes[gid] = _h(
            names[type_code[gid]],
            *(
                hashes[fanin_gates[i]]
                for i in range(fanin_start[gid], fanin_start[gid + 1])
            ),
        )
    return hashes


def _cone_masks(flat) -> "list[int]":
    """Transitive-fanin closure bitsets in one topological pass."""
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    closure = [0] * flat.num_gates
    for gid in flat.topo:
        mask = 1 << gid
        for i in range(fanin_start[gid], fanin_start[gid + 1]):
            mask |= closure[fanin_gates[i]]
        closure[gid] = mask
    return closure


def _cone_fingerprint(flat, root: int) -> str:
    """Canonical rooted-DAG encoding of the cone under ``root``, hashed.

    Pin-order DFS from the root; a gate is numbered at first visit and
    emitted as ``N<type>,<arity>;`` followed by its fanin encodings, a
    revisit is emitted as ``R<number>;``.  Arity makes the stream
    prefix-free; first-visit numbering makes it declaration-order- and
    name-independent while keeping DAG sharing visible.
    """
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    type_code = flat.type_code
    names = _TYPE_NAME_BYTES
    digest = hashlib.sha256()
    visit: "dict[int, int]" = {}
    stack = [root]
    while stack:
        gid = stack.pop()
        number = visit.get(gid)
        if number is not None:
            digest.update(b"R%d;" % number)
            continue
        visit[gid] = len(visit)
        lo, hi = fanin_start[gid], fanin_start[gid + 1]
        digest.update(b"N%s,%d;" % (names[type_code[gid]], hi - lo))
        for i in range(hi - 1, lo - 1, -1):
            stack.append(fanin_gates[i])
    return f"{_PREFIX}:{digest.hexdigest()}"


def cone_index(circuit: Circuit) -> ConeIndex:
    """The circuit's cone index, built once and cached on the circuit.

    :meth:`Circuit.replace_gate` (and unpickling) invalidate the cache;
    all other ``Circuit`` mutation happens before ``freeze()``, which the
    index requires.
    """
    circuit._require_frozen()  # noqa: SLF001 - deliberate check
    cached = getattr(circuit, "_cone_index", None)
    if cached is not None:
        return cached
    import time

    started = time.perf_counter()
    with span("conefp", circuit=circuit.name):
        flat = circuit.flat
        gate_hash = tuple(_fold_hashes(flat))
        closure = _cone_masks(flat)
        cones = tuple(
            Cone(
                po=po,
                output=circuit.gate_name(po),
                fingerprint=_cone_fingerprint(flat, po),
                mask=closure[po],
            )
            for po in circuit.outputs
        )
    index = ConeIndex(
        circuit=circuit,
        gate_hash=gate_hash,
        cones=cones,
        build_seconds=time.perf_counter() - started,
    )
    circuit._cone_index = index  # noqa: SLF001 - cache slot owned here
    return index


def cone_fingerprints(circuit: Circuit) -> "Dict[str, str]":
    """``{output name: rdcfp1 fingerprint}`` for a frozen circuit."""
    return cone_index(circuit).fingerprints()
