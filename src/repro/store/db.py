"""The SQLite-backed, content-addressed result store.

One :class:`ResultStore` is a single-file database mapping
``(fingerprint, kind, variant)`` to a JSON payload:

===========  =============================================  ============
kind         variant                                        payload
===========  =============================================  ============
``counts``   ``""``                                         ``up``/``down`` DP arrays, canonical gate order
``classify`` ``<CRITERION>|<sort key>``                     accepted/total/edges + optional per-lead counts
``sort``     ``heu1`` / ``heu2``                            rank array, canonical lead order
===========  =============================================  ============

Every row is stamped with :data:`~repro.store.fingerprint.SCHEMA_VERSION`;
reads only ever see rows of the *current* schema, so a payload-format or
fingerprint-algorithm change can never serve stale data — old rows just
stop being visible until ``gc`` reclaims them.

Concurrency: the database runs in WAL mode with a busy timeout, so the
``jobs=N`` process pool of the experiment harness and the threads of the
analysis service can all read and write one store file concurrently.
Connections are opened lazily *per process* (the store object pickles as
its path, and a fork is detected by PID), every statement is retried on
``database is locked``/``busy``, and a corrupted or undecodable payload
is deleted and reported as a miss — a store can make a run faster, never
wrong, and never dead.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.obs import get_registry
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["ResultStore", "StoreStats"]

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS entries (
    fingerprint TEXT NOT NULL,
    kind        TEXT NOT NULL,
    variant     TEXT NOT NULL,
    schema      INTEGER NOT NULL,
    payload     TEXT NOT NULL,
    created     REAL NOT NULL,
    last_used   REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, kind, variant, schema)
)
"""

#: bounded retry for statements that hit a held write lock even after
#: SQLite's own busy timeout
_LOCK_RETRIES = 8
_LOCK_SLEEP = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


@dataclass(frozen=True)
class StoreStats:
    """A snapshot of one store file, for ``repro-rd cache stats``."""

    path: str
    entries: int
    by_kind: "dict[str, int]"
    stale_entries: int  #: rows of other schema versions (gc reclaims)
    total_hits: int
    size_bytes: int

    def render(self) -> str:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        )
        return "\n".join(
            [
                f"store:   {self.path}",
                f"entries: {self.entries} ({kinds or 'empty'})",
                f"stale:   {self.stale_entries} (other schema versions)",
                f"hits:    {self.total_hits}",
                f"size:    {self.size_bytes:,} bytes",
                f"schema:  {SCHEMA_VERSION}",
            ]
        )


class ResultStore:
    """A content-addressed cache of analysis results in one SQLite file.

    ``path`` may be ``":memory:"`` for tests — such a store is private
    to the process that opened it (workers forked by the harness see an
    empty database).
    """

    def __init__(self, path: "str | Path", busy_timeout: float = 10.0):
        self.path = str(path)
        self.busy_timeout = busy_timeout
        self._local_conn: "sqlite3.Connection | None" = None
        self._pid = -1
        self._lock = threading.Lock()

    # -- connection management -----------------------------------------
    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout,
                check_same_thread=False,
                isolation_level=None,  # autocommit: every statement durable
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA_SQL)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open result store {self.path!r}: {exc}")
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        # reopen after fork: SQLite connections must not cross processes
        if self._local_conn is None or self._pid != os.getpid():
            self._local_conn = self._connect()
            self._pid = os.getpid()
        return self._local_conn

    def close(self) -> None:
        if self._local_conn is not None and self._pid == os.getpid():
            self._local_conn.close()
        self._local_conn = None
        self._pid = -1

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __reduce__(self):
        # pickles as its path: each pool worker opens its own connection
        return (type(self), (self.path, self.busy_timeout))

    def _execute(self, sql: str, params: tuple = ()):
        """One statement with bounded retry on a held write lock."""
        with self._lock:
            for attempt in range(_LOCK_RETRIES):
                try:
                    return self._conn.execute(sql, params)
                except sqlite3.OperationalError as exc:
                    if not _is_locked(exc) or attempt == _LOCK_RETRIES - 1:
                        raise StoreError(
                            f"result store {self.path!r}: {exc}"
                        ) from exc
                    time.sleep(_LOCK_SLEEP * (attempt + 1))
                except sqlite3.DatabaseError as exc:
                    raise StoreError(
                        f"result store {self.path!r}: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    # -- the content-addressed API -------------------------------------
    def get(self, fingerprint: str, kind: str, variant: str = "") -> "dict | None":
        """The payload stored under this key at the current schema
        version, or ``None``.  An undecodable payload is deleted and
        reported as a miss (never served, never fatal)."""
        registry = get_registry()
        registry.counter("store.gets").inc()
        started = time.perf_counter()
        row = self._execute(
            "SELECT payload FROM entries WHERE fingerprint=? AND kind=? "
            "AND variant=? AND schema=?",
            (fingerprint, kind, variant, SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            registry.counter("store.misses").inc()
            registry.histogram("store.get_seconds").observe(
                time.perf_counter() - started
            )
            return None
        try:
            payload = json.loads(row[0])
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, TypeError):
            registry.counter("store.corrupt_entries").inc()
            registry.counter("store.misses").inc()
            self.delete(fingerprint, kind, variant)
            return None
        self._execute(
            "UPDATE entries SET hits=hits+1, last_used=? WHERE fingerprint=? "
            "AND kind=? AND variant=? AND schema=?",
            (time.time(), fingerprint, kind, variant, SCHEMA_VERSION),
        )
        registry.counter("store.hits").inc()
        registry.histogram("store.get_seconds").observe(
            time.perf_counter() - started
        )
        return payload

    def put(self, fingerprint: str, kind: str, variant: str, payload: dict) -> None:
        """Insert or replace one entry (stamped with the current schema)."""
        registry = get_registry()
        registry.counter("store.puts").inc()
        started = time.perf_counter()
        now = time.time()
        self._execute(
            "INSERT OR REPLACE INTO entries "
            "(fingerprint, kind, variant, schema, payload, created, "
            "last_used, hits) VALUES (?, ?, ?, ?, ?, ?, ?, 0)",
            (
                fingerprint,
                kind,
                variant,
                SCHEMA_VERSION,
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
                now,
                now,
            ),
        )
        registry.histogram("store.put_seconds").observe(
            time.perf_counter() - started
        )

    def delete(self, fingerprint: str, kind: str, variant: str = "") -> None:
        self._execute(
            "DELETE FROM entries WHERE fingerprint=? AND kind=? AND variant=?",
            (fingerprint, kind, variant),
        )

    # -- maintenance (the ``repro-rd cache`` subcommand) ----------------
    def stats(self) -> StoreStats:
        by_kind: "dict[str, int]" = {}
        for kind, count in self._execute(
            "SELECT kind, COUNT(*) FROM entries WHERE schema=? GROUP BY kind",
            (SCHEMA_VERSION,),
        ).fetchall():
            by_kind[kind] = count
        stale = self._execute(
            "SELECT COUNT(*) FROM entries WHERE schema != ?", (SCHEMA_VERSION,)
        ).fetchone()[0]
        hits = self._execute(
            "SELECT COALESCE(SUM(hits), 0) FROM entries WHERE schema=?",
            (SCHEMA_VERSION,),
        ).fetchone()[0]
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return StoreStats(
            path=self.path,
            entries=sum(by_kind.values()),
            by_kind=by_kind,
            stale_entries=stale,
            total_hits=hits,
            size_bytes=size,
        )

    def gc(self, max_age_days: "float | None" = None) -> int:
        """Reclaim stale rows: every other-schema entry, plus (when
        ``max_age_days`` is given) entries not used for that long.
        Returns the number of rows removed."""
        removed = self._execute(
            "DELETE FROM entries WHERE schema != ?", (SCHEMA_VERSION,)
        ).rowcount
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            removed += self._execute(
                "DELETE FROM entries WHERE last_used < ?", (cutoff,)
            ).rowcount
        self._execute("VACUUM")
        return removed

    def clear(self) -> int:
        """Drop every entry (all schema versions).  Returns the count."""
        removed = self._execute("DELETE FROM entries").rowcount
        self._execute("VACUUM")
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"


def as_store(store: "ResultStore | str | Path | None") -> "ResultStore | None":
    """Normalize a ``store=`` argument (path or instance or None)."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
