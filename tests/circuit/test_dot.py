"""Unit tests for DOT export."""

from repro.circuit.dot import to_dot
from repro.stabilize.system import compute_stabilizing_system


def test_all_gates_and_leads_present(example_circuit):
    dot = to_dot(example_circuit)
    for gid in range(example_circuit.num_gates):
        assert f"n{gid} [" in dot
    assert dot.count("->") == example_circuit.num_leads
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")


def test_highlighting_marks_exactly_the_leads(example_circuit):
    system = compute_stabilizing_system(
        example_circuit, example_circuit.outputs[0], (1, 0, 0)
    )
    dot = to_dot(example_circuit, highlight_leads=system.leads)
    assert dot.count("color=red") == len(system.leads)


def test_name_quoting():
    from repro.circuit.builder import CircuitBuilder

    b = CircuitBuilder('weird"name')
    b.po(b.pi("a"), "out")
    dot = to_dot(b.build())
    assert 'digraph "weird\\"name"' in dot


def test_gate_type_labels(example_circuit):
    dot = to_dot(example_circuit)
    assert "AND" in dot and "OR" in dot
    assert "doublecircle" in dot  # the PO
