"""Incremental tests read the global registry — start each clean."""

import pytest

from repro.obs import reset_buffer, reset_registry


@pytest.fixture(autouse=True)
def clean_telemetry():
    reset_registry()
    reset_buffer()
    yield
    reset_registry()
    reset_buffer()
