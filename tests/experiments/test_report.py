"""Unit tests for JSON experiment reports."""

import json

from repro.circuit.examples import paper_example_circuit
from repro.experiments.harness import run_table1_row, run_table3_row
from repro.experiments.report import table1_to_dict, table3_to_dict, to_json


def test_table1_json_round_trip():
    rows = [run_table1_row(paper_example_circuit())]
    payload = table1_to_dict(rows)
    parsed = json.loads(to_json(payload))
    assert parsed["table"] == "I"
    (row,) = parsed["rows"]
    assert row["circuit"] == "paper_example"
    assert row["total_logical_paths"] == 8
    assert row["heu2_percent"] == 37.5
    assert row["shape_violations"] == []


def test_table3_json_round_trip():
    rows = [run_table3_row(paper_example_circuit())]
    parsed = json.loads(to_json(table3_to_dict(rows)))
    assert parsed["table"] == "III"
    (row,) = parsed["rows"]
    assert row["baseline_rd_percent"] == 37.5
    assert row["quality_gap_percent"] == 0.0
    assert row["speedup"] >= 0
