"""Unit tests for physical/logical path objects."""

import pytest

from repro.paths.enumerate import enumerate_physical_paths
from repro.paths.path import (
    FALLING,
    RISING,
    LogicalPath,
    PhysicalPath,
    path_parity,
)


def path_by_names(circuit, *gate_names):
    """Find the physical path visiting exactly these gates (by name)."""
    want = tuple(gate_names)
    for p in enumerate_physical_paths(circuit):
        names = tuple(circuit.gate_name(g) for g in p.gates(circuit))
        if names == want:
            return p
    raise AssertionError(f"no path {want}")


class TestPhysicalPath:
    def test_gates_reconstruction(self, example_circuit):
        p = path_by_names(example_circuit, "b", "g_and", "g_or", "out")
        assert [example_circuit.gate_name(g) for g in p.gates(example_circuit)] == [
            "b", "g_and", "g_or", "out",
        ]
        assert example_circuit.gate_name(p.source(example_circuit)) == "b"
        assert example_circuit.gate_name(p.sink(example_circuit)) == "out"
        assert len(p) == 3

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PhysicalPath(())

    def test_validate_accepts_real_paths(self, example_circuit):
        for p in enumerate_physical_paths(example_circuit):
            p.validate(example_circuit)

    def test_validate_rejects_disconnected_leads(self, example_circuit):
        paths = list(enumerate_physical_paths(example_circuit))
        a_path = path_by_names(example_circuit, "a", "g_or", "out")
        b_path = path_by_names(example_circuit, "b", "g_and", "g_or", "out")
        frankenstein = PhysicalPath((b_path.leads[0], a_path.leads[0]))
        with pytest.raises(ValueError):
            frankenstein.validate(example_circuit)

    def test_describe(self, example_circuit):
        p = path_by_names(example_circuit, "a", "g_or", "out")
        assert p.describe(example_circuit) == "a -> g_or -> out"


class TestLogicalPath:
    def test_final_value_validation(self, example_circuit):
        p = path_by_names(example_circuit, "a", "g_or", "out")
        with pytest.raises(ValueError):
            LogicalPath(p, 2)

    def test_transition_names(self, example_circuit):
        p = path_by_names(example_circuit, "a", "g_or", "out")
        assert LogicalPath(p, RISING).transition == "0->1"
        assert LogicalPath(p, FALLING).transition == "1->0"

    def test_value_propagation_no_inversion(self, example_circuit):
        p = path_by_names(example_circuit, "b", "g_and", "g_or", "out")
        lp = LogicalPath(p, RISING)
        # AND and OR do not invert: value stays 1 along the path.
        for pos in range(4):
            assert lp.value_at(example_circuit, pos) == 1
        assert lp.output_value(example_circuit) == 1

    def test_value_propagation_with_inversion(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(3, invert=True)
        p = next(iter(enumerate_physical_paths(circuit)))
        lp = LogicalPath(p, RISING)
        # three NOTs then PO: values 1,0,1,0,0(po copies)
        assert [lp.value_at(circuit, i) for i in range(5)] == [1, 0, 1, 0, 0]

    def test_value_at_bounds(self, example_circuit):
        p = path_by_names(example_circuit, "a", "g_or", "out")
        lp = LogicalPath(p, RISING)
        with pytest.raises(IndexError):
            lp.value_at(example_circuit, 17)

    def test_hashable_and_equal(self, example_circuit):
        p = path_by_names(example_circuit, "a", "g_or", "out")
        assert LogicalPath(p, 1) == LogicalPath(PhysicalPath(p.leads), 1)
        assert len({LogicalPath(p, 1), LogicalPath(p, 1)}) == 1


class TestParity:
    def test_parity_counts_inverting_gates(self):
        from repro.circuit.examples import chain_circuit

        circuit = chain_circuit(4, invert=True)
        p = next(iter(enumerate_physical_paths(circuit)))
        assert path_parity(circuit, p.leads) == 0  # 4 NOTs cancel

        circuit = chain_circuit(3, invert=True)
        p = next(iter(enumerate_physical_paths(circuit)))
        assert path_parity(circuit, p.leads) == 1
