"""Property-based tests of the core soundness claims (Algorithm 2,
Lemma 1, Lemma 2) on random circuits."""

from hypothesis import given, settings

from repro.classify.conditions import Criterion
from repro.classify.engine import check_logical_path, classify
from repro.classify.exact import exact_lp_sigma, exact_path_set
from repro.classify.session import CircuitSession
from repro.paths.enumerate import enumerate_logical_paths
from repro.sorting.heuristics import heuristic1_sort
from repro.sorting.input_sort import InputSort

from tests.strategies import small_circuits


def _approx(circuit, criterion, sort=None):
    accepted = set()
    classify(circuit, criterion, sort=sort, on_path=accepted.add)
    return accepted


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_superset_soundness_fs_nr(circuit):
    for criterion in (Criterion.FS, Criterion.NR):
        assert exact_path_set(circuit, criterion) <= _approx(circuit, criterion)


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_superset_soundness_sigma(circuit):
    sort = InputSort.pin_order(circuit)
    exact = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
    assert exact <= _approx(circuit, Criterion.SIGMA_PI, sort)


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_lemma2_equivalence(circuit):
    """Conditions (π1)-(π3) characterise exactly LP(σ^π)."""
    sort = heuristic1_sort(circuit)
    assert exact_path_set(circuit, Criterion.SIGMA_PI, sort) == exact_lp_sigma(
        circuit, sort
    )


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_lemma1_hierarchy(circuit):
    t_set = exact_path_set(circuit, Criterion.NR)
    fs_set = exact_path_set(circuit, Criterion.FS)
    for sort in (InputSort.pin_order(circuit), heuristic1_sort(circuit)):
        sigma = exact_path_set(circuit, Criterion.SIGMA_PI, sort)
        assert t_set <= sigma <= fs_set


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=12))
def test_nr_accepted_subset_of_fs_accepted(circuit):
    """Monotonicity of the approximation: stronger conditions can only
    lose paths (this underpins Heuristic 2's non-negative measure)."""
    assert _approx(circuit, Criterion.NR) <= _approx(circuit, Criterion.FS)


@settings(max_examples=25, deadline=None)
@given(circuit=small_circuits(max_gates=12))
def test_sigma_between_nr_and_fs_supersets(circuit):
    sort = InputSort.pin_order(circuit)
    nr = _approx(circuit, Criterion.NR)
    fs = _approx(circuit, Criterion.FS)
    sigma = _approx(circuit, Criterion.SIGMA_PI, sort)
    assert nr <= sigma <= fs


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_iterative_engine_agrees_with_per_path_check(circuit):
    """The implicit (iterative, prime-segment-pruned) enumeration and
    the explicit single-path checker are the same approximation: for
    every logical path of the circuit, membership in the accepted set
    equals ``check_logical_path``'s verdict, per criterion."""
    sort = heuristic1_sort(circuit)
    all_paths = list(enumerate_logical_paths(circuit))
    for criterion, s in (
        (Criterion.FS, None),
        (Criterion.NR, None),
        (Criterion.SIGMA_PI, sort),
    ):
        accepted = _approx(circuit, criterion, s)
        for lp in all_paths:
            assert (lp in accepted) == check_logical_path(
                circuit, criterion, lp, s
            ), (criterion, lp)
        # The DFS emits each accepted path exactly once.
        assert accepted <= set(all_paths)


@settings(max_examples=20, deadline=None)
@given(circuit=small_circuits(max_gates=10))
def test_session_reuse_preserves_results(circuit):
    """Back-to-back passes through one session (shared engine + cached
    tables) are indistinguishable from fresh per-call state — in either
    pass order."""
    session = CircuitSession(circuit)
    sort = InputSort.pin_order(circuit)
    plan = [
        (Criterion.SIGMA_PI, sort),
        (Criterion.FS, None),
        (Criterion.NR, None),
        (Criterion.FS, None),  # repeat: exercises the table cache
    ]
    for criterion, s in plan:
        cached: set = set()
        session.classify(criterion, sort=s, on_path=cached.add)
        assert cached == _approx(circuit, criterion, s), criterion
