"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuit.examples import (
    chain_circuit,
    mux_circuit,
    paper_example_circuit,
    reconvergent_circuit,
    two_and_tree,
)


@pytest.fixture
def example_circuit():
    """The paper's running example: out = OR(a, AND(b, c), c)."""
    return paper_example_circuit()


@pytest.fixture
def mux():
    return mux_circuit()


@pytest.fixture
def reconv():
    return reconvergent_circuit()


@pytest.fixture
def and_tree():
    return two_and_tree()


@pytest.fixture
def chain():
    return chain_circuit(4)


@pytest.fixture
def small_circuits(example_circuit, mux, reconv, and_tree, chain):
    """A fixed family of small circuits for cross-validation loops."""
    return [example_circuit, mux, reconv, and_tree, chain]
