"""The analysis daemon: ``repro-rd serve``.

A stdlib-only asyncio server speaking the JSON-lines protocol of
:mod:`repro.service.protocol` over TCP or a unix socket.  Requests are
classified in a thread pool through a *session pool* shared across
connections — sessions are keyed by circuit fingerprint, so repeated
requests for the same (or an isomorphic) circuit reuse the in-memory
implication engine and, when the server was started with a result
store, every result read through and written back to disk.

Execution discipline:

* **Bounded concurrency** — at most ``concurrency`` classifications run
  at once (an :class:`asyncio.Semaphore` gates admission; the thread
  pool has exactly that many workers).  Further requests queue.
* **Per-request deadlines** — each classify carries a wall-clock budget
  (the request's ``deadline`` field, the server default, or the
  supervisor rule :func:`~repro.experiments.supervisor.default_task_budget`
  applied to the circuit's exact path count).  A blown deadline answers
  with a structured :class:`~repro.errors.TaskTimeout` error *on the
  still-open connection*; the abandoned thread finishes in the
  background and its session returns to the pool only afterwards, so a
  timed-out session is never handed to two requests at once.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, let every
  in-flight request finish and answer, then close the remaining (idle)
  connections and exit 0.
"""

from __future__ import annotations

import asyncio
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock

from repro import __version__
from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.errors import CircuitError, ProtocolError, ReproError, TaskTimeout
from repro.experiments.supervisor import default_task_budget
from repro.gen.suite import get_circuit
from repro.obs import get_registry
from repro.service import protocol
from repro.sorting.heuristics import pin_order_sort
from repro.store.db import ResultStore, as_store
from repro.store.fingerprint import canonical_form
from repro.util.serialize import classification_payload

__all__ = ["AnalysisServer", "JsonLineServer", "run_until_signalled", "serve"]

_CRITERIA = {"fs": Criterion.FS, "nr": Criterion.NR, "sigma": Criterion.SIGMA_PI}


class SessionPool:
    """Idle :class:`CircuitSession` objects keyed by circuit fingerprint.

    Sessions are not thread-safe (they share one implication engine), so
    a checked-out session belongs to exactly one request until it is
    checked back in.  The pool is bounded: beyond ``max_idle`` idle
    sessions the oldest fingerprint's surplus is dropped (its state is
    only a cache — with a store behind it nothing is lost).
    """

    def __init__(self, store: "ResultStore | None", max_idle: int = 16):
        self._store = store
        self._max_idle = max_idle
        self._idle: "dict[str, list[CircuitSession]]" = {}
        self._lock = Lock()

    def checkout(self, circuit: Circuit) -> CircuitSession:
        canon = canonical_form(circuit)
        with self._lock:
            idle = self._idle.get(canon.fingerprint)
            if idle:
                session = idle.pop()
                if not idle:
                    del self._idle[canon.fingerprint]
                return session
        return CircuitSession(circuit, store=self._store, _canon=canon)

    def checkin(self, session: CircuitSession) -> None:
        with self._lock:
            if sum(len(v) for v in self._idle.values()) >= self._max_idle:
                # drop the least-recently-stocked fingerprint's sessions
                oldest = next(iter(self._idle), None)
                if oldest is not None:
                    del self._idle[oldest]
            self._idle.setdefault(session.fingerprint, []).append(session)

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._idle.values())


@dataclass
class _Counters:
    """Lifetime counters, reported by the ``stats`` op."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    started: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "uptime": round(time.time() - self.started, 3),
        }


class _Connection:
    """Per-connection state the drain logic inspects."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


def _build_circuit(message: dict) -> Circuit:
    bench = message.get("bench")
    name = message.get("circuit")
    if (bench is None) == (name is None):
        raise ProtocolError(
            "classify needs exactly one of 'bench' (netlist text) or "
            "'circuit' (suite generator name)"
        )
    if bench is not None:
        if not isinstance(bench, str):
            raise ProtocolError("'bench' must be .bench source text")
        return parse_bench(bench, name=str(message.get("name", "remote")))
    if not isinstance(name, str):
        raise ProtocolError("'circuit' must be a suite generator name")
    try:
        return get_circuit(name)
    except KeyError as exc:
        # suite lookup errors become CircuitError so remote callers can
        # dispatch on the same type as for a malformed netlist
        raise CircuitError(str(exc.args[0])) from exc


def _resolve_sort(session: CircuitSession, kind: str):
    if kind == "pin":
        return pin_order_sort(session.circuit)
    if kind == "heu1":
        return session.heuristic1_sort()
    if kind == "heu2":
        return session.heuristic2_sort()
    if kind == "heu2inv":
        return session.heuristic2_sort().inverted()
    raise ProtocolError(
        f"unknown sort {kind!r}; valid: pin, heu1, heu2, heu2inv"
    )


class JsonLineServer:
    """Shared lifecycle of every JSON-lines daemon in this package.

    Owns the listener, the connection set and the graceful-drain state
    machine; subclasses implement :meth:`_serve_request` (answer one
    decoded wire line on the still-open connection) and may hook
    :meth:`_on_close` for resource teardown.  :class:`AnalysisServer`
    is the single-process classifier daemon;
    :class:`~repro.service.fleet.FleetServer` is the sharding
    front-end — both speak the identical protocol through this base,
    so a client cannot tell which one it connected to.
    """

    def __init__(self, drain_timeout: float = 30.0):
        self.drain_timeout = drain_timeout
        self._server: "asyncio.base_events.Server | None" = None
        self._connections: "set[_Connection]" = set()
        self._tasks: "set[asyncio.Task]" = set()
        self._shutdown = asyncio.Event()
        self._draining = False

    # -- lifecycle ------------------------------------------------------
    async def start(
        self,
        host: "str | None" = None,
        port: "int | None" = None,
        socket_path: "str | None" = None,
    ) -> str:
        """Bind and listen; returns a printable address (the actual port
        when ``port=0`` was requested)."""
        if (socket_path is None) == (port is None):
            raise ValueError("need exactly one of port= or socket_path=")
        if socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=socket_path, limit=protocol.MAX_LINE
            )
            return socket_path
        self._server = await asyncio.start_server(
            self._on_connect, host or "127.0.0.1", port,
            limit=protocol.MAX_LINE,
        )
        bound = self._server.sockets[0].getsockname()
        return f"{bound[0]}:{bound[1]}"

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent, signal-handler safe)."""
        self._shutdown.set()

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and return."""
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # wake idle connections (blocked reading the next request); busy
        # ones finish their in-flight request, answer, then exit
        for conn in list(self._connections):
            if not conn.busy:
                conn.writer.close()
        pending = list(self._tasks)
        if pending:
            await asyncio.wait(pending, timeout=self.drain_timeout)
        leftover = list(self._tasks)
        for task in leftover:
            task.cancel()
        if leftover:
            # let the cancelled connection handlers run their finallys so
            # every peer sees FIN before the loop stops — otherwise a
            # client blocked in recv() waits forever on a half-dead socket
            await asyncio.wait(leftover, timeout=5.0)
        await self._drained()
        self.close()

    async def _drained(self) -> None:
        """Hook: runs after in-flight requests finished, before close()
        (the fleet tears its worker processes down here)."""

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
        self._on_close()

    def _on_close(self) -> None:
        """Hook: release subclass resources (executors, stores, ...)."""

    # -- connection handling --------------------------------------------
    def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        task = asyncio.ensure_future(self._client_loop(reader, conn))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _client_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        writer = conn.writer
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # over-long line (framing is unrecoverable) or reset
                    await self._send(
                        writer,
                        protocol.error_response(
                            None, ProtocolError("line too long")
                        ),
                    )
                    break
                if not line:
                    break
                conn.busy = True
                try:
                    await self._serve_request(line, writer)
                finally:
                    conn.busy = False
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.encode_line(message))
        await writer.drain()

    async def _serve_request(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        raise NotImplementedError


class AnalysisServer(JsonLineServer):
    """The daemon behind ``repro-rd serve`` (and the service tests).

    Lifecycle: :meth:`start` binds the socket, :meth:`run` serves until
    :meth:`request_shutdown` (wired to SIGTERM/SIGINT by :func:`serve`)
    and then drains, :meth:`close` releases everything.
    """

    def __init__(
        self,
        store: "ResultStore | str | None" = None,
        concurrency: int = 8,
        default_deadline: "float | None" = None,
        max_accepted: "int | None" = None,
        drain_timeout: float = 30.0,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        super().__init__(drain_timeout=drain_timeout)
        self.store = as_store(store)
        self.concurrency = concurrency
        self.default_deadline = default_deadline
        self.max_accepted = max_accepted
        self.counters = _Counters()
        self.sessions = SessionPool(self.store, max_idle=2 * concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="repro-classify"
        )
        self._admission = asyncio.Semaphore(concurrency)
        self._request_seq = 0

    def _on_close(self) -> None:
        self._executor.shutdown(wait=False)
        if self.store is not None:
            self.store.close()

    async def _serve_request(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one request; every failure is a structured error
        response on the same connection, never a disconnect.

        Every message the server sends for this request carries the
        server-assigned ``request_id`` (``req-<n>``), so a ``start``
        event, its result/error and the server's telemetry correlate.
        """
        self.counters.requests += 1
        self._request_seq += 1
        req_id = f"req-{self._request_seq}"
        registry = get_registry()
        registry.counter("service.requests").inc()
        in_flight = registry.gauge("service.in_flight")
        in_flight.inc()
        started = time.perf_counter()
        request_id = None
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            op = protocol.validate_request(message)
            registry.counter(f"service.op.{op}").inc()
            if op == "ping":
                result = {"server": "repro-rd", "version": __version__}
            elif op == "stats":
                result = await self._op_stats()
            elif op == "metrics":
                result = self._op_metrics()
            elif op == "tightness":
                result = await self._op_tightness(message, writer, req_id)
            elif op == "signoff":
                result = await self._op_signoff(message, writer, req_id)
            else:
                result = await self._op_classify(message, writer, req_id)
            await self._send(
                writer, protocol.ok_response(request_id, result, req_id)
            )
            self.counters.ok += 1
            registry.counter("service.ok").inc()
        except TaskTimeout as exc:
            self.counters.timeouts += 1
            registry.counter("service.deadline_aborts").inc()
            await self._send(
                writer, protocol.error_response(request_id, exc, req_id)
            )
        except ReproError as exc:
            self.counters.errors += 1
            registry.counter("service.errors").inc()
            await self._send(
                writer, protocol.error_response(request_id, exc, req_id)
            )
        except Exception as exc:  # defensive: never kill the connection
            self.counters.errors += 1
            registry.counter("service.errors").inc()
            await self._send(
                writer, protocol.error_response(request_id, exc, req_id)
            )
        finally:
            in_flight.dec()
            registry.histogram("service.request_seconds").observe(
                time.perf_counter() - started
            )

    # -- ops ------------------------------------------------------------
    def _op_metrics(self) -> dict:
        """The server's full telemetry snapshot (``repro-rd metrics``)."""
        return {
            "server": "repro-rd",
            "version": __version__,
            "uptime": round(time.time() - self.counters.started, 3),
            "metrics": get_registry().snapshot(),
        }

    async def _op_stats(self) -> dict:
        loop = asyncio.get_event_loop()
        result = {
            "counters": self.counters.to_dict(),
            "concurrency": self.concurrency,
            "idle_sessions": self.sessions.idle_count(),
            "store": None,
        }
        if self.store is not None:
            stats = await loop.run_in_executor(self._executor, self.store.stats)
            result["store"] = {
                "path": stats.path,
                "entries": stats.entries,
                "by_kind": stats.by_kind,
                "total_hits": stats.total_hits,
                "size_bytes": stats.size_bytes,
            }
        return result

    async def _op_classify(
        self, message: dict, writer: asyncio.StreamWriter, req_id: str
    ) -> dict:
        criterion_name = message.get("criterion", "sigma")
        if criterion_name not in _CRITERIA:
            raise ProtocolError(
                f"unknown criterion {criterion_name!r}; valid: "
                f"{', '.join(sorted(_CRITERIA))}"
            )
        criterion = _CRITERIA[criterion_name]
        sort_kind = message.get("sort", "heu2")
        max_accepted = message.get("max_accepted", self.max_accepted)
        if max_accepted is not None and not isinstance(max_accepted, int):
            raise ProtocolError("'max_accepted' must be an integer")
        cones = message.get("cones", False)
        if not isinstance(cones, bool):
            raise ProtocolError("'cones' must be a boolean")
        if cones and sort_kind not in ("pin", "heu1", "heu2"):
            raise ProtocolError(
                f"sort {sort_kind!r} is not available at cone granularity; "
                "valid: pin, heu1, heu2"
            )
        deadline = message.get("deadline", self.default_deadline)
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline' must be a number of seconds")

        loop = asyncio.get_event_loop()
        async with self._admission:
            # cheap linear prep (parse + counts) sized the budget;
            # the classification itself runs under wait_for below
            circuit, session, total = await loop.run_in_executor(
                self._executor, self._prepare, message
            )
            if deadline is None:
                deadline = default_task_budget(total)
            await self._send(
                writer,
                protocol.event(
                    message.get("id"), "start",
                    server_request_id=req_id,
                    name=circuit.name,
                    fingerprint=session.fingerprint,
                    total_logical=total,
                    deadline=round(float(deadline), 3),
                ),
            )
            started = time.monotonic()
            work = loop.run_in_executor(
                self._executor,
                self._classify, session, criterion, sort_kind, max_accepted,
                cones,
            )
            try:
                result = await asyncio.wait_for(work, timeout=float(deadline))
            except asyncio.TimeoutError:
                # the worker thread cannot be interrupted; it finishes in
                # the background and only then returns its session to the
                # pool (see _classify), so no session is ever shared
                raise TaskTimeout(circuit.name, float(deadline)) from None
            # the deadline is a hard contract: a worker that blows the
            # budget but completes before the event loop fires the
            # wait_for timer (the GIL can starve the loop for a whole
            # switch interval on sub-ms circuits) still answers TaskTimeout
            if time.monotonic() - started > float(deadline):
                raise TaskTimeout(circuit.name, float(deadline))
            return result

    async def _op_tightness(
        self, message: dict, writer: asyncio.StreamWriter, req_id: str
    ) -> dict:
        """Exact-vs-approximate verdicts for one circuit (repro.verdict)."""
        criterion_name = message.get("criterion", "sigma")
        if criterion_name not in _CRITERIA:
            raise ProtocolError(
                f"unknown criterion {criterion_name!r}; valid: "
                f"{', '.join(sorted(_CRITERIA))}"
            )
        criterion = _CRITERIA[criterion_name]
        sort_kind = message.get("sort", "heu2")
        if sort_kind not in ("pin", "heu1", "heu2", "heu2inv"):
            raise ProtocolError(
                f"unknown sort {sort_kind!r}; valid: pin, heu1, heu2, heu2inv"
            )
        max_accepted = message.get("max_accepted", self.max_accepted)
        if max_accepted is not None and not isinstance(max_accepted, int):
            raise ProtocolError("'max_accepted' must be an integer")
        deadline = message.get("deadline", self.default_deadline)
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline' must be a number of seconds")

        loop = asyncio.get_event_loop()
        async with self._admission:
            circuit, session, total = await loop.run_in_executor(
                self._executor, self._prepare, message
            )
            if deadline is None:
                deadline = default_task_budget(total)
            await self._send(
                writer,
                protocol.event(
                    message.get("id"), "start",
                    server_request_id=req_id,
                    name=circuit.name,
                    fingerprint=session.fingerprint,
                    total_logical=total,
                    deadline=round(float(deadline), 3),
                ),
            )
            started = time.monotonic()
            work = loop.run_in_executor(
                self._executor,
                self._tightness, session, criterion, sort_kind, max_accepted,
            )
            try:
                result = await asyncio.wait_for(work, timeout=float(deadline))
            except asyncio.TimeoutError:
                raise TaskTimeout(circuit.name, float(deadline)) from None
            if time.monotonic() - started > float(deadline):
                raise TaskTimeout(circuit.name, float(deadline))
            return result

    async def _op_signoff(
        self, message: dict, writer: asyncio.StreamWriter, req_id: str
    ) -> dict:
        """K-longest / above-slack robustly-testable paths (repro.signoff)."""
        k = message.get("k")
        slack = message.get("slack")
        if k is not None and slack is not None:
            raise ProtocolError("pass either 'k' or 'slack', not both")
        if k is not None and (not isinstance(k, int) or k < 1):
            raise ProtocolError("'k' must be an integer >= 1")
        if slack is not None and not isinstance(slack, (int, float)):
            raise ProtocolError("'slack' must be a number")
        exact = message.get("exact", False)
        if not isinstance(exact, bool):
            raise ProtocolError("'exact' must be a boolean")
        delays_text = message.get("delays")
        if delays_text is not None and not isinstance(delays_text, str):
            raise ProtocolError("'delays' must be annotation text")
        seed = message.get("seed", 0)
        if not isinstance(seed, int):
            raise ProtocolError("'seed' must be an integer")
        deadline = message.get("deadline", self.default_deadline)
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline' must be a number of seconds")

        loop = asyncio.get_event_loop()
        async with self._admission:
            circuit, session, total = await loop.run_in_executor(
                self._executor, self._prepare, message
            )
            if deadline is None:
                deadline = default_task_budget(total)
            await self._send(
                writer,
                protocol.event(
                    message.get("id"), "start",
                    server_request_id=req_id,
                    name=circuit.name,
                    fingerprint=session.fingerprint,
                    total_logical=total,
                    deadline=round(float(deadline), 3),
                ),
            )
            started = time.monotonic()
            work = loop.run_in_executor(
                self._executor,
                self._signoff, session, k, slack, exact, delays_text, seed,
            )
            try:
                result = await asyncio.wait_for(work, timeout=float(deadline))
            except asyncio.TimeoutError:
                raise TaskTimeout(circuit.name, float(deadline)) from None
            if time.monotonic() - started > float(deadline):
                raise TaskTimeout(circuit.name, float(deadline))
            return result

    def _signoff(
        self,
        session: CircuitSession,
        k: "int | None",
        slack: "float | None",
        exact: bool,
        delays_text: "str | None",
        seed: int,
    ) -> dict:
        from repro.signoff import DEFAULT_K, signoff_core
        from repro.timing.annotate import (
            delays_digest,
            materialize_delays,
            parse_delay_lines,
        )

        try:
            if k is None and slack is None:
                k = DEFAULT_K
            circuit = session.circuit
            if delays_text is None:
                delays = materialize_delays(circuit, None, seed=seed)
            else:
                # the wire form must cover every non-PI gate: no silent
                # fallback, so client and server can never disagree
                delays = materialize_delays(
                    circuit,
                    parse_delay_lines(delays_text, source="request"),
                    strict=True,
                )
            rows, counters, source = signoff_core(
                circuit,
                delays,
                k=k,
                slack=slack,
                exact=exact,
                session=session,
            )
            return {
                "circuit": circuit.name,
                "mode": "k" if k is not None else "slack",
                "k": k,
                "slack": slack,
                "exact": exact,
                "delays_digest": delays_digest(
                    delays, canonical=session.canonical
                ),
                "rows": [row.table_row() for row in rows],
                "counters": counters,
                "source": source,
                "fingerprint": session.fingerprint,
                "session": session.stats.to_dict(),
            }
        finally:
            self.sessions.checkin(session)

    def _tightness(
        self,
        session: CircuitSession,
        criterion: Criterion,
        sort_kind: str,
        max_accepted: "int | None",
    ) -> dict:
        from repro.verdict import tightness_row

        try:
            row = tightness_row(
                session.circuit,
                criterion,
                sort_kind,
                session=session,
                max_accepted=max_accepted,
            )
            payload = row.to_dict()
            payload["fingerprint"] = session.fingerprint
            payload["session"] = session.stats.to_dict()
            return payload
        finally:
            self.sessions.checkin(session)

    def _prepare(self, message: dict) -> "tuple[Circuit, CircuitSession, int]":
        circuit = _build_circuit(message)
        session = self.sessions.checkout(circuit)
        try:
            total = session.counts.total_logical
        except BaseException:
            self.sessions.checkin(session)
            raise
        return circuit, session, total

    def _classify(
        self,
        session: CircuitSession,
        criterion: Criterion,
        sort_kind: str,
        max_accepted: "int | None",
        cones: bool = False,
    ) -> dict:
        try:
            if cones:
                # cone granularity: reuse stored cone rows (ECO flow);
                # the sort stays symbolic and is derived per cone
                from repro.incremental import cone_classify

                report = cone_classify(
                    session.circuit,
                    criterion=criterion,
                    sort=sort_kind if criterion is Criterion.SIGMA_PI else None,
                    max_accepted=max_accepted,
                    store=session.store,
                    session_stats=session.stats,
                )
                payload = classification_payload(
                    report.result,
                    fingerprint=session.fingerprint,
                    sort_kind=(
                        sort_kind if criterion is Criterion.SIGMA_PI else None
                    ),
                    session_stats=session.stats.to_dict(),
                )
                payload["cone_stats"] = report.reuse_stats()
                return payload
            sort = None
            if criterion is Criterion.SIGMA_PI:
                sort = _resolve_sort(session, sort_kind)
            result = session.classify(
                criterion, sort=sort, max_accepted=max_accepted
            )
            return classification_payload(
                result,
                fingerprint=session.fingerprint,
                sort_kind=sort_kind if sort is not None else None,
                session_stats=session.stats.to_dict(),
            )
        finally:
            self.sessions.checkin(session)


async def serve(
    host: "str | None" = None,
    port: "int | None" = None,
    socket_path: "str | None" = None,
    store: "str | None" = None,
    concurrency: int = 8,
    default_deadline: "float | None" = None,
    max_accepted: "int | None" = None,
    ready: "Callable[[str], None] | None" = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code
    (0 after a drained SIGTERM, 130 when SIGINT triggered the drain —
    the CLI-wide Ctrl-C convention)."""
    server = AnalysisServer(
        store=store,
        concurrency=concurrency,
        default_deadline=default_deadline,
        max_accepted=max_accepted,
    )
    address = await server.start(host=host, port=port, socket_path=socket_path)
    if ready is not None:
        ready(address)
    return await run_until_signalled(server)


async def run_until_signalled(server: JsonLineServer) -> int:
    """Wire SIGTERM/SIGINT to a graceful drain and serve until one
    fires; the exit code encodes which (0 for SIGTERM or a programmatic
    :meth:`~JsonLineServer.request_shutdown`, 130 for SIGINT)."""
    loop = asyncio.get_event_loop()
    fired: "dict[str, int]" = {}

    def on_signal(signum: int) -> None:
        fired.setdefault("signum", signum)
        server.request_shutdown()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, on_signal, signum)
        except (NotImplementedError, RuntimeError):
            signal.signal(
                signum, lambda num, _frame: loop.call_soon_threadsafe(
                    on_signal, num
                )
            )
    await server.run()
    return 130 if fired.get("signum") == signal.SIGINT else 0
