"""Table I — percentage of logical paths identified robust dependent.

Columns, as in the paper: FUS (functionally unsensitizable, [2]),
Heu1, Heu2 (the new approach with both sorting heuristics), and
Heu2-bar (the inverted input sort, the paper's control experiment).
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.netlist import Circuit
from repro.experiments.harness import Table1Row, run_table1_rows
from repro.gen.suite import table1_suite
from repro.util.tables import TextTable


def run(
    circuits: Iterable[Circuit] | None = None, jobs: int = 1
) -> tuple[TextTable, list[Table1Row]]:
    rows = run_table1_rows(
        circuits if circuits is not None else table1_suite(), jobs=jobs
    )
    table = TextTable(
        ["circuit", "FUS", "Heu1", "Heu2", "inv-Heu2"],
        title="Table I: % of logical paths identified RD (ISCAS-85 stand-ins)",
    )
    for row in rows:
        table.add_row(
            [
                row.name,
                f"{row.fus_percent:.2f} %",
                f"{row.heu1_percent:.2f} %",
                f"{row.heu2_percent:.2f} %",
                f"{row.heu2_inverse_percent:.2f} %",
            ]
        )
    return table, rows


def main(jobs: int = 1) -> None:
    table, rows = run(jobs=jobs)
    print(table.render())
    for row in rows:
        for problem in row.check_expected_shape():
            print(f"!! {row.name}: {problem}")


if __name__ == "__main__":
    main()
