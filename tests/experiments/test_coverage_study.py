"""Unit tests for the fault-coverage study."""

import pytest

from repro.experiments.coverage_study import compare_sorts, estimate_coverage
from repro.sorting.heuristics import heuristic2_sort, pin_order_sort


def test_paper_example_coverages(example_circuit):
    """The paper's Example 2/3 numbers as coverage estimates: the
    optimal sort reaches 100%, pin order selects all 8 paths of which
    only 5 are robustly testable (62.5%)."""
    optimal = estimate_coverage(
        example_circuit, heuristic2_sort(example_circuit), "heu2"
    )
    assert optimal.selected == 5
    assert optimal.coverage == 1.0
    pin = estimate_coverage(
        example_circuit, pin_order_sort(example_circuit), "pin"
    )
    assert pin.selected == 8
    assert pin.coverage == pytest.approx(5 / 8)


def test_sampling_is_deterministic(example_circuit):
    a = estimate_coverage(example_circuit, pin_order_sort(example_circuit),
                          sample_size=4, seed=9)
    b = estimate_coverage(example_circuit, pin_order_sort(example_circuit),
                          sample_size=4, seed=9)
    assert a == b


def test_compare_sorts_shape(example_circuit):
    estimates = compare_sorts(
        example_circuit,
        {
            "pin": pin_order_sort(example_circuit),
            "heu2": heuristic2_sort(example_circuit),
        },
    )
    assert set(estimates) == {"pin", "heu2"}
    assert estimates["heu2"].coverage >= estimates["pin"].coverage
    assert "robust coverage" in str(estimates["heu2"])
