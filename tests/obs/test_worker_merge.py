"""Cross-worker telemetry: pool tasks ship their metrics/trace deltas
back and the parent merges them deterministically."""

import pytest

from repro.experiments.harness import run_table1_rows
from repro.experiments.supervisor import TaskRunner
from repro.gen.suite import get_circuit
from repro.obs import get_buffer, get_registry, span


def _instrumented_task(payload: int) -> int:
    """Top-level (picklable) worker: bumps telemetry, returns a value."""
    with span("test.task", payload=payload):
        get_registry().counter("test.bumps").inc(payload)
        get_registry().histogram("test.seconds").observe(payload / 100.0)
    return payload * 2


class TestPoolMerge:
    def test_worker_metrics_merge_into_parent(self):
        results = TaskRunner(jobs=2).map(_instrumented_task, [1, 2, 3, 4])
        assert results == [2, 4, 6, 8]
        snap = get_registry().snapshot()
        assert snap["counters"]["test.bumps"] == 10
        assert snap["histograms"]["test.seconds"]["count"] == 4

    def test_worker_spans_merge_into_parent_buffer(self):
        TaskRunner(jobs=2).map(_instrumented_task, [1, 2, 3])
        names = [e["name"] for e in get_buffer().snapshot()]
        assert names.count("test.task") == 3

    def test_totals_match_serial_run(self):
        serial = TaskRunner(jobs=1).map(_instrumented_task, [5, 6, 7])
        serial_snap = get_registry().snapshot()
        get_registry().reset()
        pooled = TaskRunner(jobs=2).map(_instrumented_task, [5, 6, 7])
        pooled_snap = get_registry().snapshot()
        assert serial == pooled
        assert (
            serial_snap["counters"]["test.bumps"]
            == pooled_snap["counters"]["test.bumps"]
            == 18
        )
        assert (
            serial_snap["histograms"]["test.seconds"]["count"]
            == pooled_snap["histograms"]["test.seconds"]["count"]
            == 3
        )


def _stable_fields(row) -> tuple:
    return (
        row.name,
        row.total_logical,
        row.fus_percent,
        row.heu1_percent,
        row.heu2_percent,
        row.heu2_inverse_percent,
    )


@pytest.mark.slow
class TestHarnessMerge:
    def test_table1_rows_identical_and_metrics_nonzero(self, tmp_path):
        def circuits():
            return [get_circuit("c17"), get_circuit("xcmp16")]

        serial = run_table1_rows(circuits(), jobs=1)
        get_registry().reset()
        store = str(tmp_path / "s.sqlite")
        pooled = run_table1_rows(circuits(), jobs=2, store=store)
        assert list(map(_stable_fields, serial)) == list(
            map(_stable_fields, pooled)
        )
        # worker-side telemetry (table builds, store write-backs)
        # arrived in the parent registry via the merge path
        counters = get_registry().snapshot()["counters"]
        assert counters["session.tables_built"] >= 2
        assert counters["store.puts"] >= 1
