"""Record classifier throughput on the frozen Table-I suite.

Runs one FS and one SIGMA_PI (Heuristic-1 sort) classification pass per
suite circuit through a shared :class:`~repro.classify.session.CircuitSession`
and writes ``BENCH_classify.json`` at the repo root: per-circuit
path-edge counts, wall time, and edges/second, plus suite totals.  The
committed file is the reference point for spotting classifier-core
regressions; rerun after any engine change:

    PYTHONPATH=src python benchmarks/record_classify_bench.py

``--store`` instead measures the persistent result store: the same
passes once against a cold (empty) store and once fully warm, writing
the cold/warm wall times and speedups to ``BENCH_store.json``:

    PYTHONPATH=src python benchmarks/record_classify_bench.py --store
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.gen.suite import table1_suite
from repro.store.db import ResultStore

OUT = Path(__file__).resolve().parent.parent / "BENCH_classify.json"
OUT_STORE = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def bench_circuit(circuit) -> dict:
    session = CircuitSession(circuit)
    flat = circuit.flat  # force the IR (and report its cost separately)
    flat.closures
    passes = {}
    for label, criterion, sort in (
        ("fs", Criterion.FS, None),
        ("sigma_heu1", Criterion.SIGMA_PI, session.heuristic1_sort()),
    ):
        result = session.classify(criterion, sort=sort)
        passes[label] = {
            "accepted": result.accepted,
            "rd_percent": round(result.rd_percent, 2),
            "edges_visited": result.edges_visited,
            "elapsed_s": round(result.elapsed, 4),
            "edges_per_second": round(result.edges_per_second),
        }
    return {
        "circuit": circuit.name,
        "gates": circuit.num_gates,
        "total_logical_paths": session.counts.total_logical,
        # one-time cost of the flat IR + literal closures, amortized over
        # every pass of the session (not part of any pass's elapsed_s)
        "ir_build_s": round(flat.build_s + flat.closures.build_s, 4),
        "passes": passes,
    }


def main() -> None:
    circuits = table1_suite()
    rows = []
    for circuit in circuits:
        row = bench_circuit(circuit)
        rows.append(row)
        fs = row["passes"]["fs"]
        print(
            f"{row['circuit']:<16} {fs['edges_visited']:>9} edges "
            f"{fs['elapsed_s']:>8.2f}s  {fs['edges_per_second']:>8} edges/s"
        )
    edges = sum(
        p["edges_visited"] for r in rows for p in r["passes"].values()
    )
    elapsed = sum(
        p["elapsed_s"] for r in rows for p in r["passes"].values()
    )
    doc = {
        "benchmark": "classify-throughput",
        "unit": "path-edge extensions per second",
        "suite": [r["circuit"] for r in rows],
        "python": platform.python_version(),
        "totals": {
            "edges_visited": edges,
            "elapsed_s": round(elapsed, 2),
            "edges_per_second": round(edges / elapsed) if elapsed else 0,
            "ir_build_s": round(sum(r["ir_build_s"] for r in rows), 4),
        },
        "circuits": rows,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"\ntotal: {doc['totals']['edges_per_second']} edges/s -> {OUT}")


def _timed_run(circuit, store) -> "tuple[float, dict]":
    """One FS + SIGMA_PI(heu1) pass pair through a store-backed session;
    returns (wall seconds, session counters)."""
    start = time.perf_counter()
    session = CircuitSession(circuit, store=store)
    session.classify(Criterion.FS)
    session.classify(Criterion.SIGMA_PI, sort=session.heuristic1_sort())
    return time.perf_counter() - start, session.stats.to_dict()


def main_store() -> None:
    """Cold-vs-warm store timings on the Table-I suite."""
    circuits = table1_suite()
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "bench_store.sqlite")
        for circuit in circuits:
            cold_s, cold_stats = _timed_run(circuit, store)
            warm_s, warm_stats = _timed_run(circuit, store)
            assert warm_stats["store_misses"] == 0, circuit.name
            speedup = cold_s / warm_s if warm_s > 0 else float("inf")
            rows.append(
                {
                    "circuit": circuit.name,
                    "gates": circuit.num_gates,
                    "cold_s": round(cold_s, 4),
                    "warm_s": round(warm_s, 4),
                    "speedup": round(speedup, 1),
                    "warm_store_hits": warm_stats["store_hits"],
                }
            )
            print(
                f"{circuit.name:<16} cold {cold_s:>8.3f}s  "
                f"warm {warm_s:>8.4f}s  {speedup:>8.1f}x"
            )
        entries = store.stats().entries
        store.close()
    cold_total = sum(r["cold_s"] for r in rows)
    warm_total = sum(r["warm_s"] for r in rows)
    doc = {
        "benchmark": "store-cold-vs-warm",
        "unit": "wall seconds per FS+SIGMA_PI pass pair",
        "suite": [r["circuit"] for r in rows],
        "python": platform.python_version(),
        "totals": {
            "cold_s": round(cold_total, 2),
            "warm_s": round(warm_total, 2),
            "speedup": round(cold_total / warm_total, 1)
            if warm_total
            else 0,
            "store_entries": entries,
        },
        "circuits": rows,
    }
    OUT_STORE.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(
        f"\ncold {cold_total:.2f}s -> warm {warm_total:.2f}s "
        f"({doc['totals']['speedup']}x) -> {OUT_STORE}"
    )


if __name__ == "__main__":
    sys.exit(main_store() if "--store" in sys.argv[1:] else main())
