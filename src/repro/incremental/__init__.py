"""Incremental re-analysis (ECO) support.

The paper's classification is cone-local, so an edited netlist only
needs its *changed* cones re-analyzed.  This package provides the three
layers of that flow:

* :mod:`repro.incremental.conefp` — per-output-cone content
  fingerprints (``rdcfp1:``) and the cone index (gate-membership
  bitsets, per-gate fold hashes), built in single topological passes
  over the flat IR and cached on the circuit;
* :mod:`repro.incremental.diff` — the CLEAN/DIRTY structural diff of a
  base vs an edited circuit, with per-cone gate deltas;
* :mod:`repro.incremental.reanalyze` — cone-granularity classification
  against the schema-v2 cone store and the end-to-end
  ``repro-rd reanalyze`` ECO flow.
"""

from repro.incremental.conefp import (
    CONE_SCHEMA_VERSION,
    Cone,
    ConeIndex,
    cone_fingerprints,
    cone_index,
)
from repro.incremental.diff import CircuitDiff, ConeDelta, diff_circuits
from repro.incremental.reanalyze import (
    ConeClassifyReport,
    ConeRow,
    ReanalyzeReport,
    cone_classify,
    reanalyze,
)

__all__ = [
    "CONE_SCHEMA_VERSION",
    "Cone",
    "ConeClassifyReport",
    "ConeDelta",
    "ConeIndex",
    "ConeRow",
    "CircuitDiff",
    "ReanalyzeReport",
    "cone_classify",
    "cone_fingerprints",
    "cone_index",
    "diff_circuits",
    "reanalyze",
]
