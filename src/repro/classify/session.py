"""Analysis sessions: shared per-circuit state for classification runs.

Every paper pipeline runs *several* classification passes over the same
circuit — Heuristic 2 alone pays an FS pass, an NR pass and a final
SIGMA_PI pass, and a full Table-I row adds the Heu1 and inverted-sort
passes on top.  A :class:`CircuitSession` makes the state those passes
share a first-class, reusable artifact instead of per-call scratch:

* the exact path counts (:func:`~repro.paths.count.count_paths`) are
  computed once per circuit;
* the flat IR and its literal implication closures are built once per
  circuit (cached on the :class:`Circuit` itself via ``circuit.flat``)
  and shared by every pass;
* the static per-lead bitset condition tables are cached per
  ``(criterion, sort)`` — the inverted-Heu2 control pass, for example,
  shares nothing with the forward pass, but repeated passes with the
  same sort (re-runs, benches, coverage studies) hit the cache.

(A trail-based :class:`~repro.logic.implication.ImplicationEngine` is
still available lazily via :attr:`CircuitSession.engine` for callers
that want interactive what-if implications; the classification passes
themselves run entirely on the bitset kernel.)

Sessions are deliberately cheap to create (all caches are lazy), purely
per-process (they are *not* sent across the
:mod:`~repro.experiments.harness` process pool — each worker builds its
own), and observable: :attr:`CircuitSession.stats` counts cache hits and
builds so tests can assert "exactly one ``count_paths`` per circuit".

**Persistent store.**  Passing ``store=`` (a
:class:`~repro.store.db.ResultStore` or a path) extends the caches
*across* processes: path counts, completed classification passes and the
heuristic sorts are read through from — and written back to — a
content-addressed SQLite store keyed by the circuit's canonical
fingerprint.  Per-lead payloads cross the store in canonical lead order,
so a permuted declaration of the same netlist still hits.  Reads are
strictly validated; anything corrupt or version-mismatched is treated as
a miss and recomputed.  Passes that stream paths (``on_path``) bypass
the store (the paths themselves are not cached), and a pass whose cached
``accepted`` exceeds the caller's ``max_accepted`` is recomputed so the
abort contract is identical cold and warm.  :attr:`SessionStats` gains
``store_hits``/``store_misses`` for observability.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import _run, _Tables
from repro.classify.results import ClassificationResult
from repro.errors import ClassifyError
from repro.logic.implication import ImplicationEngine
from repro.obs import get_registry, span
from repro.paths.count import PathCounts, count_paths

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.paths.path import LogicalPath
    from repro.sorting.heuristics import Heuristic2Analysis
    from repro.sorting.input_sort import InputSort
    from repro.store.db import ResultStore
    from repro.store.fingerprint import CanonicalForm


@dataclass
class SessionStats:
    """Cache observability for one :class:`CircuitSession`.

    Stats are a per-session *view* over the process-wide telemetry
    spine: every increment goes through :meth:`bump`, which also feeds
    the matching ``session.<field>`` counter of the
    :mod:`repro.obs` registry — so harness runs, the daemon and the CLI
    all aggregate session activity without a second accounting system.
    """

    count_paths_calls: int = 0
    engines_built: int = 0
    tables_built: int = 0
    tables_reused: int = 0
    classify_passes: int = 0
    budget_aborts: int = 0
    store_hits: int = 0
    store_misses: int = 0
    cone_hits: int = 0  #: cone-granularity store hits (ECO reuse)
    cone_misses: int = 0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment one counter field here *and* in the process
        metrics registry (the single write path for session stats)."""
        setattr(self, name, getattr(self, name) + amount)
        get_registry().counter(f"session.{name}").inc(amount)

    @property
    def tables_hit_rate(self) -> float:
        total = self.tables_built + self.tables_reused
        if not total:
            return 0.0
        return self.tables_reused / total

    def to_dict(self) -> dict:
        """JSON-safe counters (embedded in experiment rows)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SessionStats":
        known = {f for f in cls.__dataclass_fields__}  # tolerate extras
        return cls(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> str:
        """One human-readable line for ``--verbose`` table runs."""
        parts = [
            f"passes={self.classify_passes}",
            f"count_paths={self.count_paths_calls}",
            f"tables={self.tables_built}+{self.tables_reused}r",
        ]
        if self.store_hits or self.store_misses:
            total = self.store_hits + self.store_misses
            parts.append(
                f"store={self.store_hits}/{total} hit"
                f" ({100.0 * self.store_hits / total:.0f}%)"
            )
        else:
            parts.append("store=off")
        if self.cone_hits or self.cone_misses:
            total = self.cone_hits + self.cone_misses
            parts.append(f"cones={self.cone_hits}/{total} hit")
        if self.budget_aborts:
            parts.append(f"aborts={self.budget_aborts}")
        return " ".join(parts)


def format_session_stats(data: "dict | None") -> str:
    """Render a :meth:`SessionStats.to_dict` payload (e.g. one embedded
    in a checkpointed experiment row) as the ``--verbose`` summary."""
    if not data:
        return "(no session stats)"
    return SessionStats.from_dict(data).summary()


@dataclass
class CircuitSession:
    """Lazily-cached analysis state for one frozen circuit.

    Usage::

        session = CircuitSession(circuit)
        fs = session.classify(Criterion.FS)
        analysis = session.heuristic2_analysis()
        final = session.classify(Criterion.SIGMA_PI, sort=analysis.sort)
        session.counts.total_logical   # computed once, shared by all

    All classification entry points (:func:`repro.classify.classify`,
    the sorting heuristics, the experiment harness) accept a session and
    route through these caches.
    """

    circuit: Circuit
    stats: SessionStats = field(default_factory=SessionStats)
    store: "ResultStore | str | Path | None" = None
    _counts: PathCounts | None = field(default=None, repr=False)
    _engine: ImplicationEngine | None = field(default=None, repr=False)
    _tables: dict = field(default_factory=dict, repr=False)
    _canon: "CanonicalForm | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, Circuit):
            from repro.loading import as_core

            self.circuit = as_core(self.circuit)
        self.circuit._require_frozen()  # noqa: SLF001 - deliberate check
        if isinstance(self.store, (str, Path)):
            from repro.store.db import ResultStore

            self.store = ResultStore(self.store)

    # -- persistent store plumbing -------------------------------------
    @property
    def canonical(self) -> "CanonicalForm":
        """The circuit's canonical form (computed once, store or not)."""
        if self._canon is None:
            from repro.store.fingerprint import canonical_form

            self._canon = canonical_form(self.circuit)
        return self._canon

    @property
    def fingerprint(self) -> str:
        """The circuit's content-addressed fingerprint."""
        return self.canonical.fingerprint

    def _store_get(self, kind: str, variant: str, load: Callable):
        """Read-through with strict validation: ``load(payload)`` builds
        the in-memory artifact and may raise or return ``None`` for
        anything malformed — corrupted or mismatched entries count as
        misses and are recomputed, never served."""
        if self.store is None:
            return None
        payload = self.store.get(self.fingerprint, kind, variant)
        value = None
        if payload is not None:
            try:
                value = load(payload)
            except Exception:  # noqa: BLE001 - corrupt entry == miss
                value = None
        if value is None:
            self.stats.bump("store_misses")
        else:
            self.stats.bump("store_hits")
        return value

    def _store_put(self, kind: str, variant: str, payload: dict) -> None:
        if self.store is not None:
            self.store.put(self.fingerprint, kind, variant, payload)

    # -- cached artifacts ----------------------------------------------
    def _load_counts(self, payload: dict) -> "PathCounts | None":
        up_c, down_c = payload["up"], payload["down"]
        n = self.circuit.num_gates
        if len(up_c) != n or len(down_c) != n:
            return None
        if not all(isinstance(v, int) for v in up_c + down_c):
            return None
        up = self.canonical.unpack_gates(up_c)
        down = self.canonical.unpack_gates(down_c)
        # |P(l)| = up[src] * down[dst] — cheaper to rebuild than to store
        through = [
            up[self.circuit.lead_src(lead)] * down[self.circuit.lead_dst(lead)]
            for lead in range(self.circuit.num_leads)
        ]
        return PathCounts(
            circuit=self.circuit,
            up=tuple(up),
            down=tuple(down),
            through_lead=tuple(through),
        )

    @property
    def counts(self) -> PathCounts:
        """Exact path counts: loaded from the store if possible, else
        computed at most once per session (and written back)."""
        if self._counts is None:
            loaded = self._store_get("counts", "", self._load_counts)
            if loaded is not None:
                self._counts = loaded
            else:
                self.stats.bump("count_paths_calls")
                with span("paths.count", circuit=self.circuit.name):
                    self._counts = count_paths(self.circuit)
                self._store_put(
                    "counts",
                    "",
                    {
                        "up": self.canonical.pack_gates(self._counts.up),
                        "down": self.canonical.pack_gates(self._counts.down),
                    },
                )
        return self._counts

    @property
    def engine(self) -> ImplicationEngine:
        """The shared implication engine (trail empty between passes)."""
        if self._engine is None:
            self.stats.bump("engines_built")
            get_registry().counter("engine.builds").inc()
            self._engine = ImplicationEngine(self.circuit)
        return self._engine

    def tables(
        self, criterion: Criterion, sort: "InputSort | None" = None
    ) -> _Tables:
        """Per-lead condition tables, cached by ``(criterion, π ranks)``."""
        key = (criterion, None if sort is None else sort.ranks)
        cached = self._tables.get(key)
        if cached is None:
            self.stats.bump("tables_built")
            cached = self._tables[key] = _Tables(self.circuit, criterion, sort)
        else:
            self.stats.bump("tables_reused")
        return cached

    # -- classification ------------------------------------------------
    def _classify_variant(
        self, criterion: Criterion, sort: "InputSort | None"
    ) -> str:
        sort_key = "none" if sort is None else self.canonical.sort_key(sort.ranks)
        return f"{criterion.name}|{sort_key}"

    def _load_classification(
        self,
        payload: dict,
        criterion: Criterion,
        collect_lead_counts: bool,
        max_accepted: "int | None",
    ) -> "ClassificationResult | None":
        total = payload["total_logical"]
        accepted = payload["accepted"]
        if not isinstance(total, int) or not isinstance(accepted, int):
            return None
        if max_accepted is not None and accepted > max_accepted:
            # the cached pass completed but this caller's budget would
            # have aborted it — recompute so the abort contract holds
            return None
        lead_counts: list = []
        if collect_lead_counts:
            stored = payload.get("lead_ctrl_counts")
            if (
                not isinstance(stored, list)
                or len(stored) != self.circuit.num_leads
                or not all(isinstance(v, int) for v in stored)
            ):
                return None  # entry predates the per-lead request
            lead_counts = self.canonical.unpack_leads(stored)
        return ClassificationResult(
            circuit_name=self.circuit.name,
            criterion=criterion,
            total_logical=total,
            accepted=accepted,
            elapsed=float(payload["elapsed"]),
            lead_ctrl_counts=lead_counts,
            edges_visited=int(payload["edges_visited"]),
        )

    def classify(
        self,
        criterion: Criterion,
        sort: "InputSort | None" = None,
        collect_lead_counts: bool = False,
        max_accepted: int | None = None,
        on_path: "Callable[[LogicalPath], None] | None" = None,
        cones: bool = False,
    ) -> ClassificationResult:
        """One classification pass through the session caches.

        Same contract as :func:`repro.classify.classify`; the tables,
        implication engine and path counts come from (and warm) this
        session.  A ``max_accepted`` overflow raises
        :class:`~repro.errors.ClassifyError` (counted in
        :attr:`SessionStats.budget_aborts`); the session stays usable —
        the engine trail is restored even on abort.

        With a persistent :attr:`store`, a completed pass for the same
        circuit structure, criterion and sort is served without running
        the enumeration at all.  ``on_path`` passes bypass the store
        (the paths themselves are not cached); an aborted pass is never
        written back.

        ``cones=True`` switches to cone granularity
        (:func:`repro.incremental.reanalyze.cone_classify`): each output
        cone is classified independently and read through from / written
        back to the store's schema-v2 cone table, so an edited netlist
        reuses every untouched cone's rows.  The aggregate
        accepted/total counts decompose exactly; ``max_accepted``
        becomes a per-cone budget, ``elapsed`` sums per-cone CPU time,
        and ``edges_visited`` counts the per-cone DFS work (cone runs
        share no cross-cone memo, so the figure is comparable only to
        other cone-granularity runs).  Streaming and per-lead collection
        stay whole-circuit concerns: ``on_path`` or
        ``collect_lead_counts`` with ``cones=True`` raise
        :class:`ValueError`.
        """
        if cones:
            if on_path is not None or collect_lead_counts:
                raise ValueError(
                    "cones=True classifies per extracted cone; per-lead "
                    "counts and on_path streaming are whole-circuit only"
                )
            from repro.incremental.reanalyze import cone_classify

            self.stats.bump("classify_passes")
            return cone_classify(
                self.circuit,
                criterion=criterion,
                sort=sort,
                max_accepted=max_accepted,
                store=self.store,
                session_stats=self.stats,
            ).result
        self.stats.bump("classify_passes")
        use_store = self.store is not None and on_path is None
        variant = ""
        if use_store:
            variant = self._classify_variant(criterion, sort)
            cached = self._store_get(
                "classify",
                variant,
                lambda payload: self._load_classification(
                    payload, criterion, collect_lead_counts, max_accepted
                ),
            )
            if cached is not None:
                return cached
        tables = self.tables(criterion, sort)
        try:
            with span(
                "classify.pass",
                circuit=self.circuit.name,
                criterion=criterion.name,
            ):
                result = _run(
                    self.circuit,
                    criterion,
                    tables,
                    self.counts,
                    collect_lead_counts,
                    max_accepted,
                    on_path,
                )
        except ClassifyError:
            self.stats.bump("budget_aborts")
            raise
        registry = get_registry()
        registry.counter("engine.edges_visited").inc(result.edges_visited)
        registry.counter("classify.accepted").inc(result.accepted)
        if use_store:
            payload = {
                "total_logical": result.total_logical,
                "accepted": result.accepted,
                "elapsed": result.elapsed,
                "edges_visited": result.edges_visited,
            }
            if collect_lead_counts:
                payload["lead_ctrl_counts"] = self.canonical.pack_leads(
                    result.lead_ctrl_counts
                )
            self._store_put("classify", variant, payload)
        return result

    # -- sorting heuristics (convenience, session-cached) --------------
    def _load_sort(self, payload: dict) -> "InputSort | None":
        from repro.sorting.input_sort import InputSort

        stored = payload["ranks"]
        if (
            not isinstance(stored, list)
            or len(stored) != self.circuit.num_leads
            or not all(isinstance(v, int) for v in stored)
        ):
            return None
        # InputSort validates per-gate rank permutations; a corrupt
        # entry raises ValueError, which _store_get turns into a miss
        return InputSort(self.circuit, self.canonical.unpack_leads(stored))

    def record_sort(self, name: str, sort: "InputSort") -> None:
        """Write a derived heuristic sort back to the persistent store
        (no-op without one)."""
        if self.store is not None:
            self._store_put(
                "sort", name, {"ranks": self.canonical.pack_leads(sort.ranks)}
            )

    def heuristic1_sort(self) -> "InputSort":
        """Heuristic 1 from the cached path counts (no extra counting)."""
        from repro.sorting.heuristics import heuristic1_sort

        if self.store is not None:
            cached = self._store_get("sort", "heu1", self._load_sort)
            if cached is not None:
                return cached
        sort = heuristic1_sort(self.circuit, counts=self.counts)
        self.record_sort("heu1", sort)
        return sort

    def heuristic2_analysis(
        self, max_accepted: int | None = None
    ) -> "Heuristic2Analysis":
        """Algorithm 3 with both superset passes through this session."""
        from repro.sorting.heuristics import heuristic2_analysis

        return heuristic2_analysis(
            self.circuit, max_accepted=max_accepted, session=self
        )

    def heuristic2_sort(self, max_accepted: int | None = None) -> "InputSort":
        if self.store is not None:
            cached = self._store_get("sort", "heu2", self._load_sort)
            if cached is not None:
                return cached
        return self.heuristic2_analysis(max_accepted=max_accepted).sort
