"""Functional-preserving netlist clean-up passes.

* :func:`propagate_constants` — fold gates whose output is fixed by
  constant-valued inputs (constants are injected via ``known`` — e.g.
  the frozen pins of a redundancy-removal step);
* :func:`remove_double_inverters` — collapse NOT-NOT chains;
* :func:`sweep` — run all passes plus dead-gate stripping to a fixpoint.

All passes return a fresh circuit plus a gate map and are verified by
exhaustive truth-table equivalence in the test suite.  Note that these
are *logic* transforms: they change the path structure, so delay-fault
analyses must run on the netlist actually manufactured — the library
uses these for constructing experiment variants, never silently.
"""

from __future__ import annotations

from repro.circuit.gates import (
    GateType,
    controlling_value,
    evaluate_gate,
    has_controlling_value,
)
from repro.circuit.netlist import Circuit


def _rebuild(
    circuit: Circuit,
    replacement: "dict[int, int | tuple]",
    name: str,
) -> "tuple[Circuit, dict]":
    """Build a new circuit honouring ``replacement``: gate id -> either
    another gate id (alias) or ('const', value).  Constants are
    materialised only if actually consumed, as an AND(x, NOT x)-free
    construction: value 0 = AND(pi0, NOT pi0) is ugly, so constants are
    instead pushed into consumers by re-evaluating them; callers
    guarantee consumers of constants are themselves replaced."""
    out = Circuit(name)
    mapping: dict = {}

    def resolve(gid: int) -> int:
        seen = set()
        while gid in replacement:
            if gid in seen:
                raise ValueError("cyclic replacement chain")
            seen.add(gid)
            target = replacement[gid]
            if isinstance(target, tuple):
                raise ValueError(
                    "constant gate still referenced after folding"
                )
            gid = target
        return mapping[gid]

    for gid in range(circuit.num_gates):
        if gid in replacement:
            continue
        fanin = [resolve(src) for src in circuit.fanin(gid)]
        mapping[gid] = out.add_gate(
            circuit.gate_type(gid), circuit.gate_name(gid), fanin
        )
    out.freeze()
    full_map = dict(mapping)
    for gid in replacement:
        try:
            full_map[gid] = resolve(gid)
        except ValueError:
            pass  # folded-away constant with no surviving alias
    return out, full_map


def propagate_constants(
    circuit: Circuit,
    known: "dict[int, int] | None" = None,
    name: "str | None" = None,
    known_pins: "dict[int, int] | None" = None,
) -> "tuple[Circuit, dict]":
    """Fold the consequences of ``known`` (gate id -> constant value)
    and/or ``known_pins`` (lead id -> constant seen at that input pin —
    the redundancy-removal primitive: a redundant s-a-v pin may be
    frozen to v without changing the function).

    Gates that become constant are removed; consumers re-simplify:
    a controlling constant replaces the gate by a constant, a
    non-controlling constant drops the input pin (or forwards the sole
    remaining input).  POs must not become constant (that output would
    be untestable by construction) — a ValueError names the culprit.
    """
    const: dict = dict(known or {})
    pin_const: dict = dict(known_pins or {})
    alias: dict = {}
    out = Circuit(name or f"{circuit.name}_cp")
    mapping: dict = {}

    def value_of(gid: int):
        return const.get(gid)

    def pin_value(gid: int, pin: int, src: int):
        """Constant seen at one input pin: the pin override wins over a
        constant source net."""
        lead = circuit.lead_index(gid, pin)
        if lead in pin_const:
            return pin_const[lead]
        return const.get(src)

    def resolve_alias(gid: int) -> int:
        while gid in alias:
            gid = alias[gid]
        return gid

    for gid in range(circuit.num_gates):
        gtype = circuit.gate_type(gid)
        if gid in const and gtype is GateType.PI:
            # Constant PI: keep the PI gate (inputs stay), note value.
            mapping[gid] = out.add_gate(GateType.PI, circuit.gate_name(gid))
            continue
        if gtype is GateType.PI:
            mapping[gid] = out.add_gate(GateType.PI, circuit.gate_name(gid))
            continue
        in_values = [
            pin_value(gid, pin, src)
            for pin, src in enumerate(circuit.fanin(gid))
        ]
        if all(v is not None for v in in_values):
            const[gid] = evaluate_gate(gtype, in_values)
            continue
        if gtype in (GateType.NOT, GateType.BUF, GateType.PO):
            src = circuit.fanin(gid)[0]
            if in_values[0] is not None:
                if gtype is GateType.PO:
                    raise ValueError(
                        f"PO {circuit.gate_name(gid)!r} becomes constant"
                    )
                const[gid] = evaluate_gate(gtype, [in_values[0]])
                continue
            src_gate = resolve_alias(src)
            mapping[gid] = out.add_gate(
                gtype, circuit.gate_name(gid), [mapping[src_gate]]
            )
            continue
        c = controlling_value(gtype)
        if any(v == c for v in in_values):
            const[gid] = evaluate_gate(gtype, [c])
            continue
        live = [
            resolve_alias(src)
            for src, v in zip(circuit.fanin(gid), in_values)
            if v is None
        ]
        if len(live) == 1:
            # All other inputs non-controlling: gate passes (or inverts)
            # its last live input.
            if gtype in (GateType.AND, GateType.OR):
                alias[gid] = live[0]
                continue
            mapping[gid] = out.add_gate(
                GateType.NOT, circuit.gate_name(gid), [mapping[live[0]]]
            )
            continue
        mapping[gid] = out.add_gate(
            gtype, circuit.gate_name(gid), [mapping[g] for g in live]
        )
    for po in circuit.outputs:
        if po in const:
            raise ValueError(
                f"PO {circuit.gate_name(po)!r} becomes constant"
            )
    out.freeze()
    full_map = dict(mapping)
    for gid, target in alias.items():
        while target in alias:
            target = alias[target]
        if target in mapping:
            full_map[gid] = mapping[target]
    return out, full_map


def remove_double_inverters(
    circuit: Circuit, name: "str | None" = None
) -> "tuple[Circuit, dict]":
    """Collapse ``NOT(NOT(x))`` to ``x`` (repeatedly)."""
    replacement: dict = {}
    for gid in range(circuit.num_gates):
        if circuit.gate_type(gid) is not GateType.NOT:
            continue
        src = circuit.fanin(gid)[0]
        if circuit.gate_type(src) is GateType.NOT:
            replacement[gid] = circuit.fanin(src)[0]
    if not replacement:
        return circuit.copy(name or circuit.name), {
            g: g for g in range(circuit.num_gates)
        }
    return _rebuild(circuit, replacement, name or f"{circuit.name}_dinv")


def sweep(circuit: Circuit, name: "str | None" = None) -> Circuit:
    """Double-inverter removal + dead-gate stripping to a fixpoint."""
    from repro.circuit.transforms import strip_unreachable

    current = circuit
    while True:
        simplified, _ = remove_double_inverters(current)
        simplified = strip_unreachable(simplified)
        if simplified.num_gates == current.num_gates:
            simplified.name = name or circuit.name
            return simplified
        current = simplified
