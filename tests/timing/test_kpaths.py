"""Unit tests for lazy k-longest path enumeration."""

import pytest

from repro.paths.enumerate import enumerate_logical_paths
from repro.timing.delays import random_delays, unit_delays
from repro.timing.kpaths import (
    iter_paths_by_delay,
    k_longest_paths,
    paths_above_threshold,
)
from repro.timing.pathdelay import logical_path_delay
from repro.timing.sta import static_timing


class TestOrderAndCompleteness:
    def test_yields_all_paths_in_decreasing_order(self, small_circuits):
        for circuit in small_circuits:
            for seed in range(3):
                delays = random_delays(circuit, seed=seed)
                produced = list(iter_paths_by_delay(circuit, delays))
                # Non-increasing delays.
                values = [d for d, _ in produced]
                assert values == sorted(values, reverse=True), circuit.name
                # Exactly the full logical path set.
                assert {lp for _, lp in produced} == set(
                    enumerate_logical_paths(circuit)
                )
                # Reported delays are correct.
                for delay, lp in produced:
                    assert delay == pytest.approx(
                        logical_path_delay(circuit, lp, delays)
                    )

    def test_first_path_is_critical(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=11)
            (first_delay, _lp), = k_longest_paths(circuit, delays, 1)
            report = static_timing(circuit, delays)
            assert first_delay == pytest.approx(report.critical_delay)


class TestKLongest:
    def test_k_larger_than_population(self, example_circuit):
        delays = unit_delays(example_circuit)
        out = k_longest_paths(example_circuit, delays, 100)
        assert len(out) == 8

    def test_k_validation(self, example_circuit):
        with pytest.raises(ValueError):
            k_longest_paths(example_circuit, unit_delays(example_circuit), 0)

    def test_monster_circuit_top_paths(self):
        """The headline capability: the slowest paths of a multiplier
        with ~10^23 logical paths, without enumeration."""
        from repro.gen.multiplier import array_multiplier
        from repro.paths.count import count_paths

        circuit = array_multiplier(16)
        assert count_paths(circuit).total_logical > 10**20
        delays = unit_delays(circuit)
        top = k_longest_paths(circuit, delays, 10)
        assert len(top) == 10
        values = [d for d, _ in top]
        assert values == sorted(values, reverse=True)
        report = static_timing(circuit, delays)
        assert values[0] == pytest.approx(report.critical_delay)
        for _d, lp in top:
            lp.path.validate(circuit)


class TestThreshold:
    def test_matches_eager_selection(self, small_circuits):
        for circuit in small_circuits:
            delays = random_delays(circuit, seed=5)
            threshold = 0.6 * static_timing(circuit, delays).critical_delay
            lazy = {lp for _d, lp in paths_above_threshold(
                circuit, delays, threshold
            )}
            eager = {
                lp
                for lp in enumerate_logical_paths(circuit)
                if logical_path_delay(circuit, lp, delays) >= threshold
            }
            assert lazy == eager, circuit.name

    def test_path_budget_guard(self, example_circuit):
        delays = unit_delays(example_circuit)
        with pytest.raises(RuntimeError):
            list(
                paths_above_threshold(
                    example_circuit, delays, 0.0, max_paths=2
                )
            )

    def test_state_budget_guard(self, example_circuit):
        delays = unit_delays(example_circuit)
        with pytest.raises(RuntimeError):
            list(iter_paths_by_delay(example_circuit, delays, max_states=1))


class TestDeterministicTieBreak:
    """Equal-delay paths must come out in a stable lexicographic order —
    signoff tables are byte-compared across job counts and reruns."""

    def test_unit_delay_ties_sorted_by_lead_tuple(self, small_circuits):
        for circuit in small_circuits:
            delays = unit_delays(circuit)
            produced = list(iter_paths_by_delay(circuit, delays))
            by_delay: dict = {}
            for delay, lp in produced:
                by_delay.setdefault(delay, []).append(lp)
            for group in by_delay.values():
                keys = [
                    tuple(
                        circuit.lead_index(
                            circuit.lead_dst(lead), circuit.lead_pin(lead)
                        )
                        for lead in lp.path.leads
                    )
                    for lp in group
                ]
                # Within one delay class the physical spelling is
                # non-decreasing lexicographically by lead index (each
                # path appears once per transition).
                assert keys == sorted(keys)

    def test_rerun_is_identical(self, small_circuits):
        for circuit in small_circuits:
            delays = unit_delays(circuit)
            first = list(iter_paths_by_delay(circuit, delays))
            second = list(iter_paths_by_delay(circuit, delays))
            assert first == second
