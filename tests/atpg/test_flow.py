"""The full stuck-at ATPG flow, end to end."""

import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.flow import run_atpg
from repro.atpg.stuckat import is_redundant
from repro.logic.bitsim import detected_faults


class TestOnPaperExample:
    def test_flow_accounts_for_every_fault(self, example_circuit):
        result = run_atpg(example_circuit, random_burst=8)
        assert result.num_faults == len(collapse_faults(example_circuit))
        assert result.coverage == 1.0
        assert not result.aborted
        # The b pin of the AND is fully redundant (both polarities).
        redundant_leads = {f.describe(example_circuit) for f in result.redundant}
        assert any("b->g_and" in d for d in redundant_leads)

    def test_redundant_verdicts_match_sat(self, example_circuit):
        result = run_atpg(example_circuit, random_burst=0)
        for fault in result.redundant:
            assert is_redundant(example_circuit, fault)
        for fault in result.detected:
            assert not is_redundant(example_circuit, fault)


class TestEngines:
    @pytest.mark.parametrize("engine", ["podem", "sat"])
    def test_engines_agree_on_coverage(self, small_circuits, engine):
        for circuit in small_circuits:
            result = run_atpg(circuit, engine=engine, random_burst=16)
            assert result.coverage == 1.0, f"{circuit.name} via {engine}"
            # Claimed detections must survive re-simulation.
            regraded = detected_faults(
                circuit, result.patterns, result.detected
            )
            assert regraded == result.detected

    def test_bad_engine(self, example_circuit):
        with pytest.raises(ValueError):
            run_atpg(example_circuit, engine="magic")


class TestCompaction:
    def test_pattern_count_reasonable(self):
        from repro.gen.adders import ripple_carry_adder

        circuit = ripple_carry_adder(4)
        result = run_atpg(circuit, random_burst=64, seed=3)
        assert result.coverage == 1.0
        # Far fewer patterns than faults (random burst + fault dropping).
        assert len(result.patterns) < result.num_faults / 2

    def test_random_burst_disabled(self, example_circuit):
        result = run_atpg(example_circuit, random_burst=0)
        assert result.coverage == 1.0

    def test_explicit_fault_list(self, example_circuit):
        targets = collapse_faults(example_circuit)[:3]
        result = run_atpg(example_circuit, faults=targets, random_burst=0)
        assert result.num_faults == 3

    def test_str(self, example_circuit):
        text = str(run_atpg(example_circuit))
        assert "patterns detect" in text and "redundant" in text
