"""Graphviz DOT export for circuits, paths and stabilizing systems.

Produces plain ``.dot`` text (no graphviz dependency); useful for
inspecting small circuits, highlighting a logical path, or rendering a
stabilizing system the way the paper's figures draw them (bold leads).
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

_SHAPES = {
    GateType.PI: "circle",
    GateType.PO: "doublecircle",
    GateType.NOT: "invtriangle",
    GateType.BUF: "triangle",
}


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    circuit: Circuit,
    highlight_leads: "Iterable[int] | None" = None,
    graph_name: str | None = None,
) -> str:
    """Render the circuit as a DOT digraph.

    ``highlight_leads`` (lead indices) are drawn bold red — pass a
    stabilizing system's ``.leads`` or a path's ``.leads`` to reproduce
    the paper's figure style.
    """
    highlighted = set(highlight_leads or ())
    lines = [f"digraph {_quote(graph_name or circuit.name)} {{"]
    lines.append("  rankdir=LR;")
    for gid in range(circuit.num_gates):
        gtype = circuit.gate_type(gid)
        shape = _SHAPES.get(gtype, "box")
        label = circuit.gate_name(gid)
        if gtype not in (GateType.PI, GateType.PO):
            label = f"{label}\\n{gtype.name}"
        lines.append(
            f"  n{gid} [label={_quote(label)}, shape={shape}];"
        )
    for lead in range(circuit.num_leads):
        src = circuit.lead_src(lead)
        dst = circuit.lead_dst(lead)
        pin = circuit.lead_pin(lead)
        attrs = [f"taillabel={_quote(str(pin))}", "fontsize=8"]
        if lead in highlighted:
            attrs += ["color=red", "penwidth=2.5"]
        lines.append(f"  n{src} -> n{dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"
