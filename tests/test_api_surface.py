"""The stable public API: ``repro.api.__all__`` is a contract.

The frozen list below is the reviewed surface.  A failure here means
the public API changed: widening it is a deliberate decision (update
the snapshot in the same change), narrowing it is a breaking change.
"""

import importlib

import repro
import repro.api

# the reviewed surface — keep sorted within each block, mirror api.py
API_SNAPSHOT = [
    # errors
    "ReproError",
    "CircuitError",
    "ClassifyError",
    "ExactLimitError",
    "HarnessError",
    "TaskTimeout",
    "TaskCrashed",
    "StoreError",
    "ServiceError",
    "ProtocolError",
    "RemoteError",
    "Overloaded",
    "VerdictError",
    # circuits
    "Circuit",
    "CircuitBuilder",
    "FlatCircuit",
    "GateType",
    "paper_example_circuit",
    "parse_bench",
    "parse_bench_file",
    "parse_pla",
    "parse_pla_file",
    "write_bench",
    # classification
    "CircuitSession",
    "ClassificationResult",
    "Criterion",
    "check_logical_path",
    "classify",
    # observability
    "MetricsRegistry",
    "export_jsonl",
    "format_metrics",
    "get_registry",
    "histogram_quantile",
    "reset_registry",
    "span",
    # paths
    "LogicalPath",
    "PhysicalPath",
    "count_paths",
    "enumerate_logical_paths",
    "enumerate_physical_paths",
    # input sorts
    "InputSort",
    "heuristic1_sort",
    "heuristic2_sort",
    "pin_order_sort",
    "random_sort",
    # stabilizing systems
    "CompleteStabilizingAssignment",
    "StabilizingSystem",
    "all_stabilizing_systems",
    "assignment_from_sort",
    "compute_stabilizing_system",
    # baseline
    "baseline_rd",
    "leafdag_rd_paths",
    # delay-test generation
    "is_nonrobustly_testable",
    "is_robustly_testable",
    "nonrobust_test",
    "robust_test",
    # timing
    "DelayAssignment",
    "delays_digest",
    "iter_paths_by_delay",
    "k_longest_paths",
    "logical_path_delay",
    "materialize_delays",
    "parse_delay_annotations",
    "parse_delays_file",
    "random_delays",
    "settle_time",
    "unit_delays",
    "write_delay_annotations",
    # unified loading
    "ScanCircuit",
    "as_core",
    "load",
    "parse_sequential_bench",
    # timing signoff
    "SignoffReport",
    "SignoffRow",
    "signoff",
    "signoff_core",
    "signoff_remote",
    # result store
    "ResultStore",
    "canonical_form",
    "fingerprint",
    # incremental re-analysis (ECO)
    "CircuitDiff",
    "ConeClassifyReport",
    "ConeIndex",
    "ReanalyzeReport",
    "cone_classify",
    "cone_fingerprints",
    "cone_index",
    "diff_circuits",
    "reanalyze",
    # analysis service + fleet
    "AnalysisServer",
    "FleetServer",
    "HashRing",
    "RetryPolicy",
    "ServiceClient",
    "WorkerSupervisor",
    "serve",
    "serve_fleet",
    # SAT-exact verdicts + tightness
    "PathVerdict",
    "SensitizationEncoder",
    "TightnessReport",
    "TightnessRow",
    "VerdictOracle",
    "run_tightness",
    "tightness_row",
    # serialization
    "classification_payload",
    "info_payload",
    "to_json",
]


class TestSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == sorted(API_SNAPSHOT)

    def test_no_duplicates(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_every_name_resolves_on_facade(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_package_reexports_facade(self):
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name), name

    def test_package_all_is_facade_plus_version(self):
        assert set(repro.__all__) == set(repro.api.__all__) | {"__version__"}

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        assert set(API_SNAPSHOT) <= set(namespace)


class TestDeepImportsKeepWorking:
    """The facade is additive: established deep paths stay importable."""

    DEEP = [
        ("repro.classify.session", "CircuitSession"),
        ("repro.classify.conditions", "Criterion"),
        ("repro.store.db", "ResultStore"),
        ("repro.service.client", "ServiceClient"),
        ("repro.service.fleet", "FleetServer"),
        ("repro.service.hashring", "HashRing"),
        ("repro.service.supervisor", "WorkerSupervisor"),
        ("repro.obs.metrics", "MetricsRegistry"),
        ("repro.obs.trace", "span"),
        ("repro.paths.count", "count_paths"),
        ("repro.sorting.heuristics", "heuristic2_sort"),
        ("repro.verdict.oracle", "VerdictOracle"),
        ("repro.verdict.tightness", "run_tightness"),
        ("repro.loading", "load"),
        ("repro.circuit.sequential", "ScanCircuit"),
        ("repro.timing.annotate", "materialize_delays"),
        ("repro.timing.kpaths", "iter_paths_by_delay"),
        ("repro.signoff.query", "signoff_core"),
        ("repro.signoff.remote", "signoff_remote"),
        ("repro.signoff.report", "SignoffRow"),
    ]

    def test_deep_paths(self):
        for module_name, attr in self.DEEP:
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), f"{module_name}.{attr}"

    def test_deep_and_facade_agree(self):
        from repro.classify.session import CircuitSession as deep

        assert repro.api.CircuitSession is deep
