"""The sharded service fleet: ``repro-rd serve --workers N``.

A front-end acceptor speaking the exact wire protocol of the
single-process daemon (:mod:`repro.service.protocol` — clients cannot
tell the difference), backed by N supervised worker processes each
running :class:`~repro.service.server.AnalysisServer` over its own unix
socket with its own session pool and store handle.

Request path, in order:

1. **Fingerprint routing** — classify requests are consistent-hashed by
   their circuit's ``rdfp1:`` fingerprint
   (:mod:`repro.service.hashring`), so every circuit has a home shard
   whose in-memory implication engine and store pages stay hot.  The
   fingerprint comes from a front-end LRU keyed by the request's
   ``circuit`` name or ``bench`` digest; a miss parses the netlist once
   in a side thread (malformed input therefore fails fast at the
   front-end, before touching a worker).
2. **Single-flight coalescing** — concurrent identical ``(fingerprint,
   criterion, sort, max_accepted, deadline)`` classifies share one
   worker computation.  The first request is the *leader* (it streams
   the worker's ``start`` event and computes); every other joins as a
   *follower* and receives the leader's final answer with
   ``"coalesced": true``.  A failing leader fails its followers with
   the same structured error.
3. **Admission control** — each worker has a bounded pending queue
   (``max_pending``).  A classify routed to a full shard is shed with a
   structured ``Overloaded`` error carrying a ``retry_after`` hint
   instead of buffering without bound.
4. **Failure handling** — a worker that dies or wedges mid-request
   breaks the front-end's backend connection; the front-end drops the
   shard from the ring, pokes the supervisor (which respawns it with
   backoff), and transparently retries idempotent requests on a
   surviving shard.  Exhausted retries answer a structured
   ``TaskCrashed`` — a client never sees a dropped connection for a
   worker-side failure.

Deadlines propagate: a request's ``deadline`` is a total budget — the
front-end forwards the *remaining* budget after routing/queueing (and
re-shrinks it on a retry), and the worker honors it server-side.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro import __version__
from repro.errors import (
    Overloaded,
    ProtocolError,
    ReproError,
    ServiceError,
    TaskCrashed,
    TaskTimeout,
)
from repro.obs import MetricsRegistry, get_registry
from repro.service import protocol
from repro.service.hashring import HashRing
from repro.service.server import (
    JsonLineServer,
    _build_circuit,
    _Counters,
    run_until_signalled,
)
from repro.service.supervisor import WorkerSupervisor, unix_rpc
from repro.store.fingerprint import canonical_form

__all__ = ["FleetServer", "serve_fleet"]

#: ops safe to retry on another worker after a mid-request crash — all
#: current ops are pure/deterministic; a future mutating op must NOT be
#: added here (the fleet would double-apply it)
IDEMPOTENT_OPS = frozenset(
    {"classify", "metrics", "ping", "signoff", "stats", "tightness"}
)


class _WorkerConnError(ServiceError):
    """Transport-level failure against a worker (died, reset, wedged)."""


class _RelayedError(ReproError):
    """A worker answered a structured error; the front-end re-emits the
    wire payload verbatim so the client sees the original ``type`` (and
    ``retry_after`` when present), not a wrapper."""

    def __init__(self, error: dict):
        super().__init__(
            f"{error.get('type', 'ReproError')}: {error.get('message', '')}"
        )
        self.error = dict(error)


class FleetServer(JsonLineServer):
    """Front-end acceptor + supervisor for N worker processes."""

    def __init__(
        self,
        workers: int = 2,
        store: "str | None" = None,
        concurrency: int = 8,
        default_deadline: "float | None" = None,
        max_accepted: "int | None" = None,
        max_pending: int = 64,
        replicas: int = 64,
        socket_dir: "str | None" = None,
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        max_health_failures: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        retry_attempts: int = 2,
        reroute_wait: float = 5.0,
        drain_timeout: float = 30.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        super().__init__(drain_timeout=drain_timeout)
        self.max_pending = max_pending
        self.concurrency = concurrency
        self.retry_attempts = retry_attempts
        self.reroute_wait = reroute_wait
        self.health_timeout = health_timeout
        self.counters = _Counters()
        self._socket_dir = socket_dir or tempfile.mkdtemp(prefix="repro-fleet-")
        self._own_socket_dir = socket_dir is None
        self.supervisor = WorkerSupervisor(
            count=workers,
            socket_dir=self._socket_dir,
            store=store,
            concurrency=concurrency,
            default_deadline=default_deadline,
            max_accepted=max_accepted,
            health_interval=health_interval,
            health_timeout=health_timeout,
            max_health_failures=max_health_failures,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
            on_worker_up=self._worker_up,
            on_worker_down=self._worker_down,
        )
        self.ring = HashRing(replicas=replicas)
        self._available = asyncio.Event()
        self._pools: "dict[int, list]" = {}  # worker -> idle (reader, writer)
        self._pending: "dict[int, int]" = {i: 0 for i in range(workers)}
        self._inflight: "dict[tuple, asyncio.Future]" = {}
        self._fingerprints: "OrderedDict[tuple, str]" = OrderedDict()
        self._fp_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-fleet-fp"
        )
        self._request_seq = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self, host=None, port=None, socket_path=None) -> str:
        """Spawn and readiness-check every worker, then bind the
        front-end listener (clients never reach an empty fleet)."""
        await self.supervisor.start()
        return await super().start(
            host=host, port=port, socket_path=socket_path
        )

    async def _drained(self) -> None:
        await self.supervisor.stop()

    def _on_close(self) -> None:
        for pool in self._pools.values():
            for _reader, bw in pool:
                bw.close()
        self._pools.clear()
        self._fp_executor.shutdown(wait=False)
        if self._own_socket_dir:
            shutil.rmtree(self._socket_dir, ignore_errors=True)

    # -- ring membership (supervisor callbacks, event-loop thread) ------
    def _worker_up(self, index: int) -> None:
        self.ring.add(index)
        self._available.set()

    def _worker_down(self, index: int) -> None:
        self.ring.remove(index)
        if not len(self.ring):
            self._available.clear()
        for reader, bw in self._pools.pop(index, []):
            bw.close()

    # -- request handling -----------------------------------------------
    async def _serve_request(self, line, writer) -> None:
        self.counters.requests += 1
        self._request_seq += 1
        req_id = f"flt-{self._request_seq}"
        registry = get_registry()
        registry.counter("fleet.requests").inc()
        started = time.perf_counter()
        request_id = None
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            op = protocol.validate_request(message)
            registry.counter(f"fleet.op.{op}").inc()
            if op == "ping":
                result = {
                    "server": "repro-rd-fleet",
                    "version": __version__,
                    "workers": len(self.supervisor.workers),
                }
            elif op == "stats":
                result = self._op_stats()
            elif op == "metrics":
                result = await self._op_metrics()
            else:
                result = await self._op_classify(message, writer, req_id)
            await self._send(
                writer, protocol.ok_response(request_id, result, req_id)
            )
            self.counters.ok += 1
            registry.counter("fleet.ok").inc()
        except _RelayedError as exc:
            self.counters.errors += 1
            registry.counter("fleet.relayed_errors").inc()
            await self._send(writer, {
                "id": request_id, "ok": False,
                "error": dict(exc.error), "request_id": req_id,
            })
        except ReproError as exc:
            self.counters.errors += 1
            registry.counter("fleet.errors").inc()
            await self._send(
                writer, protocol.error_response(request_id, exc, req_id)
            )
        except Exception as exc:  # defensive: never kill the connection
            self.counters.errors += 1
            registry.counter("fleet.errors").inc()
            await self._send(
                writer, protocol.error_response(request_id, exc, req_id)
            )
        finally:
            registry.histogram("fleet.request_seconds").observe(
                time.perf_counter() - started
            )

    # -- ops ------------------------------------------------------------
    def _op_stats(self) -> dict:
        registry = get_registry()
        workers = []
        for handle in self.supervisor.describe():
            handle["pending"] = self._pending.get(handle["index"], 0)
            handle["routed"] = handle["index"] in self.ring
            workers.append(handle)
        return {
            "server": "repro-rd-fleet",
            "counters": self.counters.to_dict(),
            "workers": workers,
            "respawns": self.supervisor.respawn_total,
            "coalesce_hits": registry.counter("fleet.coalesce_hits").value,
            "cone_hits": registry.counter("fleet.cone_hits").value,
            "shed": registry.counter("fleet.shed").value,
            "max_pending": self.max_pending,
        }

    async def _op_metrics(self) -> dict:
        """Front-end registry (fleet.*) merged with every live worker's
        snapshot — one fleet-wide telemetry view."""
        merged = MetricsRegistry()
        merged.merge(get_registry().snapshot())
        for handle in self.supervisor.workers:
            if not handle.alive():
                continue
            try:
                answer = await unix_rpc(
                    handle.socket_path, {"op": "metrics"},
                    self.health_timeout,
                )
            except (asyncio.TimeoutError, ServiceError, OSError):
                continue
            if answer.get("ok"):
                result = answer.get("result") or {}
                if isinstance(result.get("metrics"), dict):
                    merged.merge(result["metrics"])
        return {
            "server": "repro-rd-fleet",
            "version": __version__,
            "uptime": round(time.time() - self.counters.started, 3),
            "workers": len(self.supervisor.workers),
            "metrics": merged.snapshot(),
        }

    # -- classify: fingerprint, coalesce, dispatch ----------------------
    async def _op_classify(self, message, writer, req_id) -> dict:
        t0 = time.monotonic()
        deadline = message.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline' must be a number of seconds")
        fingerprint = await self._fingerprint_for(message)
        # the op is part of the key: a classify and a tightness request
        # on the same circuit compute different answers
        op = message.get("op", "classify")
        if op == "signoff":
            # an rdfp1: fingerprint is timing-blind, so the query AND the
            # delay assignment must separate otherwise-identical requests
            delays_text = message.get("delays")
            key = (
                op,
                fingerprint,
                message.get("k"),
                message.get("slack"),
                bool(message.get("exact", False)),
                message.get("seed", 0),
                None if delays_text is None else hashlib.sha256(
                    delays_text.encode("utf-8")
                ).hexdigest(),
                deadline,
            )
        else:
            key = (
                op,
                fingerprint,
                message.get("criterion", "sigma"),
                message.get("sort", "heu2"),
                message.get("max_accepted"),
                deadline,
                bool(message.get("cones", False)),
            )
        registry = get_registry()
        inflight = self._inflight.get(key)
        if inflight is not None:
            registry.counter("fleet.coalesce_hits").inc()
            result = dict(await asyncio.shield(inflight))
            result["coalesced"] = True
            return result
        registry.counter("fleet.coalesce_leaders").inc()
        future = asyncio.get_event_loop().create_future()
        self._inflight[key] = future
        try:
            result = await self._dispatch(
                message, fingerprint, writer, t0, deadline
            )
            result["coalesced"] = False
            cone_stats = result.get("cone_stats")
            if isinstance(cone_stats, dict):
                # cone-level reuse reported by the worker (ECO requests)
                registry.counter("fleet.cone_hits").inc(
                    int(cone_stats.get("reused", 0))
                )
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed: no "never retrieved" warning
            raise
        finally:
            del self._inflight[key]

    async def _fingerprint_for(self, message: dict) -> str:
        bench = message.get("bench")
        if bench is not None and isinstance(bench, str):
            cache_key = (
                "bench", hashlib.sha256(bench.encode("utf-8")).hexdigest()
            )
        else:
            cache_key = ("circuit", message.get("circuit"))
        cached = self._fingerprints.get(cache_key)
        if cached is not None:
            self._fingerprints.move_to_end(cache_key)
            return cached
        loop = asyncio.get_event_loop()
        fingerprint = await loop.run_in_executor(
            self._fp_executor, self._compute_fingerprint, message
        )
        self._fingerprints[cache_key] = fingerprint
        while len(self._fingerprints) > 4096:
            self._fingerprints.popitem(last=False)
        return fingerprint

    @staticmethod
    def _compute_fingerprint(message: dict) -> str:
        return canonical_form(_build_circuit(message)).fingerprint

    async def _dispatch(
        self, message, fingerprint, writer, t0, deadline
    ) -> dict:
        """Route, admit and forward one classify; transparently retry a
        transport-level worker failure on the (re-routed) ring."""
        registry = get_registry()
        label = message.get("circuit") or message.get(
            "name", fingerprint[:18]
        )
        last_error = "worker connection failed"
        for attempt in range(self.retry_attempts):
            worker = await self._route(fingerprint)
            if self._pending.get(worker, 0) >= self.max_pending:
                registry.counter("fleet.shed").inc()
                mean = registry.histogram("fleet.request_seconds").mean
                raise Overloaded(
                    f"worker {worker} has {self.max_pending} requests "
                    "pending; retry later",
                    retry_after=max(
                        0.05, mean * self.max_pending / self.concurrency
                    ),
                )
            self._pending[worker] = self._pending.get(worker, 0) + 1
            registry.counter(f"fleet.worker.{worker}.requests").inc()
            try:
                return await self._forward(
                    worker, message, writer, t0, deadline
                )
            except _WorkerConnError as exc:
                last_error = str(exc)
                registry.counter("fleet.worker_errors").inc()
                # drop the shard now; the supervisor confirms (and
                # respawns) on its poked health check, re-adding the
                # shard once its replacement answers pings
                self._worker_down(worker)
                self.supervisor.note_failure(worker)
                if attempt + 1 < self.retry_attempts:
                    registry.counter("fleet.retries").inc()
            finally:
                self._pending[worker] = max(
                    0, self._pending.get(worker, 1) - 1
                )
        raise TaskCrashed(str(label), last_error)

    async def _route(self, fingerprint: str) -> int:
        try:
            return self.ring.route(fingerprint)
        except ServiceError:
            # every shard is down — wait briefly for a respawn instead
            # of failing a burst that a 100ms recovery would absorb
            try:
                await asyncio.wait_for(
                    self._available.wait(), self.reroute_wait
                )
            except asyncio.TimeoutError:
                raise ServiceError(
                    "no workers available (all shards down)"
                ) from None
            return self.ring.route(fingerprint)

    async def _forward(
        self, worker: int, message, writer, t0, deadline
    ) -> dict:
        """One request over an exclusive backend connection; relays
        ``start`` events to the leader's client as they stream."""
        reader, bw = await self._checkout(worker)
        reusable = False
        try:
            downstream = dict(message)
            if deadline is not None:
                remaining = float(deadline) - (time.monotonic() - t0)
                if remaining <= 0:
                    reusable = True  # never wrote to the connection
                    raise TaskTimeout(
                        str(message.get("circuit", "classify")),
                        float(deadline),
                    )
                downstream["deadline"] = remaining
            try:
                bw.write(protocol.encode_line(downstream))
                await bw.drain()
                while True:
                    line = await reader.readline()
                    if not line:
                        raise ConnectionResetError("worker closed mid-request")
                    answer = protocol.decode_line(line)
                    if "event" in answer:
                        answer.setdefault("worker", worker)
                        try:
                            await self._send(writer, answer)
                        except (ConnectionError, OSError):
                            pass  # client left; finish for the followers
                        continue
                    break
            except (ConnectionError, OSError, ValueError, ProtocolError) as exc:
                # a ProtocolError here is a torn line from a dying
                # worker (half-written JSON at EOF), not client input
                raise _WorkerConnError(
                    f"worker {worker} failed mid-request: {exc}"
                ) from exc
            if answer.get("ok"):
                result = answer.get("result")
                if not isinstance(result, dict):
                    raise _WorkerConnError(
                        f"worker {worker} sent a malformed response"
                    )
                result["worker"] = worker
                reusable = True
                return result
            error = answer.get("error")
            if not isinstance(error, dict):
                raise _WorkerConnError(
                    f"worker {worker} sent a malformed error"
                )
            reusable = True  # a structured error leaves the stream clean
            raise _RelayedError(error)
        finally:
            if reusable and not self._draining and worker in self.ring:
                self._checkin(worker, reader, bw)
            else:
                bw.close()

    # -- backend connection pool ----------------------------------------
    async def _checkout(self, worker: int):
        pool = self._pools.setdefault(worker, [])
        while pool:
            reader, bw = pool.pop()
            if not bw.is_closing() and not reader.at_eof():
                return reader, bw
            bw.close()
        socket_path = self.supervisor.workers[worker].socket_path
        try:
            return await asyncio.wait_for(
                asyncio.open_unix_connection(
                    socket_path, limit=protocol.MAX_LINE
                ),
                self.health_timeout,
            )
        except (asyncio.TimeoutError, OSError) as exc:
            raise _WorkerConnError(
                f"cannot reach worker {worker}: {exc}"
            ) from exc

    def _checkin(self, worker: int, reader, bw) -> None:
        pool = self._pools.setdefault(worker, [])
        if len(pool) < self.concurrency:
            pool.append((reader, bw))
        else:
            bw.close()


async def serve_fleet(
    host: "str | None" = None,
    port: "int | None" = None,
    socket_path: "str | None" = None,
    store: "str | None" = None,
    workers: int = 2,
    concurrency: int = 8,
    default_deadline: "float | None" = None,
    max_accepted: "int | None" = None,
    max_pending: int = 64,
    ready=None,
) -> int:
    """Run the fleet until SIGTERM/SIGINT; exit code 0 on a drained
    SIGTERM, 130 on SIGINT (the CLI Ctrl-C convention)."""
    server = FleetServer(
        workers=workers,
        store=store,
        concurrency=concurrency,
        default_deadline=default_deadline,
        max_accepted=max_accepted,
        max_pending=max_pending,
    )
    address = await server.start(
        host=host, port=port, socket_path=socket_path
    )
    if ready is not None:
        ready(address)
    return await run_until_signalled(server)
