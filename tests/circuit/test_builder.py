"""Unit tests for CircuitBuilder including the XOR/XNOR/MUX macros."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.logic.simulate import all_vectors, output_values


def test_basic_gates_functional():
    b = CircuitBuilder("t")
    a, c = b.pi("a"), b.pi("c")
    b.po(b.and_(a, c), "o_and")
    b.po(b.or_(a, c), "o_or")
    b.po(b.nand(a, c), "o_nand")
    b.po(b.nor(a, c), "o_nor")
    b.po(b.not_(a), "o_not")
    b.po(b.buf(c), "o_buf")
    circuit = b.build()
    for va, vc in all_vectors(2):
        got = output_values(circuit, (va, vc))
        assert got == (
            va & vc,
            va | vc,
            1 - (va & vc),
            1 - (va | vc),
            1 - va,
            vc,
        )


@pytest.mark.parametrize("macro,fn", [
    ("xor", lambda a, b: a ^ b),
    ("xnor", lambda a, b: 1 - (a ^ b)),
    ("xor_nand", lambda a, b: a ^ b),
])
def test_xor_macros(macro, fn):
    b = CircuitBuilder("t")
    a, c = b.pi("a"), b.pi("c")
    b.po(getattr(b, macro)(a, c), "out")
    circuit = b.build()
    for va, vc in all_vectors(2):
        assert output_values(circuit, (va, vc)) == (fn(va, vc),)


def test_mux_macro():
    b = CircuitBuilder("t")
    s, a, c = b.pi("s"), b.pi("a"), b.pi("c")
    b.po(b.mux(s, a, c), "out")
    circuit = b.build()
    for vs, va, vc in all_vectors(3):
        expected = vc if vs else va
        assert output_values(circuit, (vs, va, vc)) == (expected,)


def test_xor_nand_uses_only_nands():
    from repro.circuit.gates import GateType

    b = CircuitBuilder("t")
    a, c = b.pi("a"), b.pi("c")
    b.po(b.xor_nand(a, c), "out")
    circuit = b.build()
    internal = [
        circuit.gate_type(g)
        for g in range(circuit.num_gates)
        if circuit.gate_type(g) not in (GateType.PI, GateType.PO)
    ]
    assert internal == [GateType.NAND] * 4


def test_builder_circuit_property_access():
    b = CircuitBuilder("t")
    a = b.pi("a")
    assert not b.circuit.frozen
    b.po(a, "out")
    built = b.build()
    assert built.frozen
