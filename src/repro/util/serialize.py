"""Shared machine-readable payload shapes (CLI ``--json``, the daemon).

The analysis daemon, ``repro-rd classify --json`` and ``repro-rd info
--json`` all serialize through these helpers, so there is exactly one
key set per payload instead of per-caller ad-hoc dicts — a test that
asserts on ``classification_payload`` keys covers every producer.
"""

from __future__ import annotations

import json

from repro.classify.results import ClassificationResult


def classification_payload(
    result: ClassificationResult,
    *,
    fingerprint: "str | None" = None,
    sort_kind: "str | None" = None,
    session_stats: "dict | None" = None,
) -> dict:
    """One classification pass as the stable wire/CLI shape.

    This is the daemon's ``classify`` result object; the CLI's
    ``classify --json`` emits the identical keys.
    """
    return {
        "name": result.circuit_name,
        "fingerprint": fingerprint,
        "criterion": result.criterion.name,
        "sort": sort_kind,
        "total_logical": result.total_logical,
        "accepted": result.accepted,
        "rd_count": result.rd_count,
        "rd_percent": round(result.rd_percent, 6),
        "elapsed": round(result.elapsed, 6),
        "edges_visited": result.edges_visited,
        "session": session_stats,
    }


def info_payload(circuit, counts, internal_fanout_stems: int) -> dict:
    """``repro-rd info --json``: circuit shape, flat-IR stats and exact
    path counts."""
    flat = circuit.flat
    return {
        "name": circuit.name,
        "gates": circuit.num_gates,
        "inputs": len(circuit.inputs),
        "outputs": len(circuit.outputs),
        "leads": circuit.num_leads,
        "internal_fanout_stems": internal_fanout_stems,
        "physical_paths": counts.total_physical,
        "logical_paths": counts.total_logical,
        "ir": {
            "gate_types": flat.gate_type_histogram(),
            "leads": flat.num_leads,
            "bitset_words": flat.bitset_words,
            "build_ms": round(flat.build_s * 1000, 3),
        },
    }


def to_json(payload: dict, indent: "int | None" = 2) -> str:
    """The one JSON rendering (sorted keys) every ``--json`` flag uses."""
    return json.dumps(payload, indent=indent, sort_keys=True)
