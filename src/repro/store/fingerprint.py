"""Canonical content-addressed fingerprints for frozen circuits.

The persistent result store (:mod:`repro.store.db`) keys every cached
artifact by a *fingerprint* of the circuit it was computed on.  Two
requirements shape the design:

* **Declaration-order insensitivity.**  The same netlist read from a
  permuted ``.bench`` file (gates listed in any topological order, any
  gate names) must produce the same fingerprint, or re-runs would never
  hit the cache.  Gate *names* carry no structure, so they are ignored.
* **Pin-order sensitivity.**  The order of a gate's fanin pins is the
  circuit's default input sort (it decides ``σ^π`` for ``sort=None``
  classification and numbers the leads every per-lead artifact is
  indexed by), so ``AND(a, b)`` and ``AND(b, a)`` fingerprint
  differently.

The construction is a canonical form, not just a hash:

1. Two rounds of Weisfeiler-Leman-style refinement give every gate a
   structural label combining its transitive-fanin shape (pin order
   preserved) and its transitive-fanout shape (order-insensitive).
2. A canonical topological numbering repeatedly emits the ready gate
   with the smallest ``(label, canonical fanin numbers)`` key.  Ties
   after that key are WL-equivalent gates in symmetric positions, where
   either order encodes the same structure.
3. The fingerprint hashes, in canonical order, each gate's type and its
   fanin gates' canonical numbers in pin order — an encoding from which
   the circuit could be rebuilt up to gate names, so two circuits
   fingerprint equal only if they are structurally identical (modulo
   SHA-256 collisions).

The canonical numbering also yields a canonical *lead* order, used to
re-index per-lead payloads (input-sort ranks, per-lead path counts) so
they can be stored once and mapped onto any permutation of the netlist.

``SCHEMA_VERSION`` tags both the fingerprint prefix and every store
entry; bumping it after any change to this algorithm or to a payload
format makes every stale entry invisible (never served, reclaimed by
``gc``).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: Gate-type code -> label bytes, indexed by GateType value.
_TYPE_NAME_BYTES = {t.value: t.name.encode() for t in GateType}

__all__ = [
    "CONE_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "CanonicalForm",
    "canonical_form",
    "fingerprint",
]

#: Version of the fingerprint algorithm *and* of every store payload
#: format.  Bump on any incompatible change; old entries become
#: invisible rather than wrong.
SCHEMA_VERSION = 1

#: Version of the *cone* fingerprint algorithm
#: (:mod:`repro.incremental.conefp`) and of every cone-level store
#: payload.  Versioned independently of :data:`SCHEMA_VERSION`: the two
#: encodings can evolve separately without invalidating each other's
#: rows.
CONE_SCHEMA_VERSION = 1

_PREFIX = f"rdfp{SCHEMA_VERSION}"


def _h(*parts: bytes) -> bytes:
    """Collision-resistant combiner: length-prefixed SHA-256."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.digest()


def _refine(flat, label: "list[bytes]") -> "list[bytes]":
    """One WL refinement round: combine each gate's label with its
    transitive-fanin shape (pin order significant) and transitive-fanout
    shape (order-insensitive).  Operates on the flat IR's CSR adjacency;
    a branch's pin number is its lead offset within the destination's
    fanin block."""
    n = flat.num_gates
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    fanout_start = flat.fanout_start
    fanout_dst = flat.fanout_dst
    fanout_lead = flat.fanout_lead
    up = [b""] * n
    for gid in flat.topo:
        up[gid] = _h(
            label[gid],
            *(
                up[fanin_gates[i]]
                for i in range(fanin_start[gid], fanin_start[gid + 1])
            ),
        )
    down = [b""] * n
    for gid in reversed(flat.topo):
        branches = sorted(
            _h(
                (fanout_lead[i] - fanin_start[fanout_dst[i]]).to_bytes(
                    4, "big"
                ),
                down[fanout_dst[i]],
            )
            for i in range(fanout_start[gid], fanout_start[gid + 1])
        )
        down[gid] = _h(label[gid], *branches)
    return [_h(u, d) for u, d in zip(up, down)]


def _gate_labels(flat) -> "list[bytes]":
    type_names = _TYPE_NAME_BYTES
    labels = [type_names[code] for code in flat.type_code]
    labels = _refine(flat, labels)
    # A second round separates DAG-sharing patterns the first cannot
    # (e.g. one shared subtree vs two structurally equal copies).
    return _refine(flat, labels)


@dataclass(frozen=True)
class CanonicalForm:
    """The declaration-order-independent view of one frozen circuit.

    ``gate_order[i]`` / ``lead_order[i]`` are the *original* gate/lead
    ids sitting at canonical position ``i``; per-gate and per-lead
    arrays are stored in canonical order and mapped back through them.
    """

    fingerprint: str
    gate_order: "tuple[int, ...]"
    lead_order: "tuple[int, ...]"

    def pack_leads(self, values: Sequence) -> list:
        """Re-index a per-lead array (original order) canonically."""
        return [values[lead] for lead in self.lead_order]

    def unpack_leads(self, values: Sequence) -> list:
        """Inverse of :meth:`pack_leads`."""
        out = [None] * len(self.lead_order)
        for position, lead in enumerate(self.lead_order):
            out[lead] = values[position]
        return out

    def pack_gates(self, values: Sequence) -> list:
        """Re-index a per-gate array (original order) canonically."""
        return [values[gid] for gid in self.gate_order]

    def unpack_gates(self, values: Sequence) -> list:
        """Inverse of :meth:`pack_gates`."""
        out = [None] * len(self.gate_order)
        for position, gid in enumerate(self.gate_order):
            out[gid] = values[position]
        return out

    def sort_key(self, ranks: Sequence[int]) -> str:
        """Content hash of an input sort's rank array, canonical lead
        order — equal for the "same" sort on any permutation of the
        netlist."""
        blob = b",".join(b"%d" % ranks[lead] for lead in self.lead_order)
        return hashlib.sha256(blob).hexdigest()[:32]


def _canonical_gate_order(flat, labels: "list[bytes]") -> "list[int]":
    """Canonical topological numbering (see module docstring)."""
    n = flat.num_gates
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    fanout_start = flat.fanout_start
    fanout_dst = flat.fanout_dst
    remaining = [fanin_start[gid + 1] - fanin_start[gid] for gid in range(n)]
    number = [-1] * n
    ready: list = []
    for gid in range(n):
        if remaining[gid] == 0:
            heapq.heappush(ready, (labels[gid], (), gid))
    order: "list[int]" = []
    while ready:
        _label, _fanin_key, gid = heapq.heappop(ready)
        number[gid] = len(order)
        order.append(gid)
        for i in range(fanout_start[gid], fanout_start[gid + 1]):
            dst = fanout_dst[i]
            remaining[dst] -= 1
            if remaining[dst] == 0:
                fanin_key = tuple(
                    number[fanin_gates[j]]
                    for j in range(fanin_start[dst], fanin_start[dst + 1])
                )
                heapq.heappush(ready, (labels[dst], fanin_key, dst))
    return order


def canonical_form(circuit: Circuit) -> CanonicalForm:
    """Compute the full canonical form of a frozen circuit (O(E log V)).

    Runs entirely over ``circuit.flat``; the digest and orders are
    byte-identical to the original object-graph construction (the flat IR
    carries true gate-type codes, not just the engine's coarser kinds).
    """
    circuit._require_frozen()  # noqa: SLF001 - deliberate check
    flat = circuit.flat
    labels = _gate_labels(flat)
    gate_order = _canonical_gate_order(flat, labels)
    n = flat.num_gates
    number = [0] * n
    for position, gid in enumerate(gate_order):
        number[gid] = position
    fanin_start = flat.fanin_start
    fanin_gates = flat.fanin_gates
    type_names = _TYPE_NAME_BYTES
    digest = hashlib.sha256()
    digest.update(b"%d" % n)
    for gid in gate_order:
        digest.update(b"|")
        digest.update(type_names[flat.type_code[gid]])
        for i in range(fanin_start[gid], fanin_start[gid + 1]):
            digest.update(b",%d" % number[fanin_gates[i]])
    lead_order = [
        lead
        for gid in gate_order
        for lead in range(fanin_start[gid], fanin_start[gid + 1])
    ]
    return CanonicalForm(
        fingerprint=f"{_PREFIX}:{digest.hexdigest()}",
        gate_order=tuple(gate_order),
        lead_order=tuple(lead_order),
    )


def fingerprint(circuit: Circuit) -> str:
    """The content-addressed fingerprint of a frozen circuit."""
    return canonical_form(circuit).fingerprint
