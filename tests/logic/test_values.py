"""Unit tests for the ternary value algebra."""

import pytest

from repro.circuit.gates import GateType
from repro.logic.values import (
    X,
    controlled_output,
    ternary_gate_eval,
    uncontrolled_output,
)


class TestTernaryEval:
    def test_controlling_input_decides_despite_x(self):
        assert ternary_gate_eval(GateType.AND, [0, X, X]) == 0
        assert ternary_gate_eval(GateType.NAND, [X, 0]) == 1
        assert ternary_gate_eval(GateType.OR, [1, X]) == 1
        assert ternary_gate_eval(GateType.NOR, [X, 1, X]) == 0

    def test_all_noncontrolling_decides(self):
        assert ternary_gate_eval(GateType.AND, [1, 1]) == 1
        assert ternary_gate_eval(GateType.NOR, [0, 0]) == 1

    def test_unknown_when_undetermined(self):
        assert ternary_gate_eval(GateType.AND, [1, X]) == X
        assert ternary_gate_eval(GateType.OR, [0, X]) == X

    def test_not_and_wires(self):
        assert ternary_gate_eval(GateType.NOT, [X]) == X
        assert ternary_gate_eval(GateType.NOT, [0]) == 1
        assert ternary_gate_eval(GateType.BUF, [X]) == X
        assert ternary_gate_eval(GateType.PO, [1]) == 1

    def test_binary_agreement_with_evaluate_gate(self):
        from itertools import product

        from repro.circuit.gates import evaluate_gate

        for gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR):
            for inputs in product((0, 1), repeat=3):
                assert ternary_gate_eval(gtype, inputs) == evaluate_gate(
                    gtype, inputs
                )


class TestControlledOutputs:
    @pytest.mark.parametrize(
        "gtype,ctrl_out,nc_out",
        [
            (GateType.AND, 0, 1),
            (GateType.NAND, 1, 0),
            (GateType.OR, 1, 0),
            (GateType.NOR, 0, 1),
        ],
    )
    def test_values(self, gtype, ctrl_out, nc_out):
        assert controlled_output(gtype) == ctrl_out
        assert uncontrolled_output(gtype) == nc_out
