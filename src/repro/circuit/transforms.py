"""Structural circuit transforms.

* :func:`strip_unreachable` — drop gates feeding no PO.
* :func:`unfold_leaf_dag` — the *leaf-dag* of a single-output circuit
  (Section II of the paper / Lam et al. [1]): the circuit unfolded so that
  fanout only occurs at PIs.  Its size is exponential in the amount of
  internal fanout, which is exactly why the paper's fast algorithm avoids
  it; the baseline of [1] operates on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError


def strip_unreachable(circuit: Circuit, name: str | None = None) -> Circuit:
    """Return a copy without gates that feed no primary output."""
    keep: set[int] = set()
    for po in circuit.outputs:
        keep |= circuit.cone_of(po)
    keep.update(circuit.inputs)  # keep every PI, even if unused
    out = Circuit(name or circuit.name)
    mapping: dict[int, int] = {}
    for gid in circuit.topo_order:
        if gid not in keep:
            continue
        fanin = tuple(mapping[s] for s in circuit.fanin(gid))
        mapping[gid] = out.add_gate(circuit.gate_type(gid), circuit.gate_name(gid), fanin)
    return out.freeze()


class LeafDagTooLarge(CircuitError):
    """Raised when unfolding would exceed the caller's gate budget."""


@dataclass
class LeafDag:
    """The unfolded (fanout-free above the PIs) version of a cone.

    ``origin[g]`` maps each leaf-dag gate to the original gate it copies.
    ``branch_paths`` maps each leaf-dag *PI input lead* (the only leads
    with fanout freedom in the original) to the original physical path it
    represents, as a tuple of original-circuit lead indices.
    """

    circuit: Circuit
    origin: dict[int, int]
    branch_paths: dict[int, tuple[int, ...]] = field(default_factory=dict)


def unfold_leaf_dag(
    circuit: Circuit, po: int, max_gates: int = 200_000
) -> LeafDag:
    """Unfold the cone of PO ``po`` into its leaf-dag.

    Every internal gate is duplicated once per distinct path from its
    output to the PO, so each leaf-dag gate lies on exactly one path to
    the root.  PIs are shared (hence *leaf*-dag rather than tree).

    Raises :class:`LeafDagTooLarge` once more than ``max_gates`` gates
    have been created, since the blow-up is exponential in general.
    """
    if circuit.gate_type(po) is not GateType.PO:
        raise CircuitError(f"gate {po} is not a PO")
    out = Circuit(f"{circuit.name}.leafdag")
    origin: dict[int, int] = {}
    branch_paths: dict[int, tuple[int, ...]] = {}
    pi_copy: dict[int, int] = {}
    counter = [0]

    def copy_pi(orig: int) -> int:
        if orig not in pi_copy:
            gid = out.add_gate(GateType.PI, circuit.gate_name(orig))
            pi_copy[orig] = gid
            origin[gid] = orig
        return pi_copy[orig]

    def copy_subtree(orig: int, suffix_leads: tuple[int, ...]) -> int:
        """Copy the cone of original gate ``orig``; ``suffix_leads`` is the
        original-lead path from ``orig``'s output up to the PO, used to
        reconstruct full physical paths at the leaves."""
        if circuit.gate_type(orig) is GateType.PI:
            return copy_pi(orig)
        if out.num_gates > max_gates:
            raise LeafDagTooLarge(
                f"leaf-dag of {circuit.name}/{circuit.gate_name(po)} exceeds "
                f"{max_gates} gates"
            )
        fanin_copies = []
        for pin, src in enumerate(circuit.fanin(orig)):
            lead = circuit.lead_index(orig, pin)
            fanin_copies.append(copy_subtree(src, (lead,) + suffix_leads))
        counter[0] += 1
        gid = out.add_gate(
            circuit.gate_type(orig),
            f"{circuit.gate_name(orig)}${counter[0]}",
            fanin_copies,
        )
        origin[gid] = orig
        for pin, src_copy in enumerate(fanin_copies):
            if out.gate_type(src_copy) is GateType.PI:
                orig_lead = circuit.lead_index(orig, pin)
                # Record later, once lead ids exist (after freeze); stash
                # by (gid, pin) for now.
                pending.append((gid, pin, (orig_lead,) + suffix_leads))
        return gid

    pending: list[tuple[int, int, tuple[int, ...]]] = []
    # Create PI copies up front in the original circuit's PI order, so
    # the leaf-dag's input ordering matches the cone's (truth tables and
    # vector-indexed code stay aligned).
    cone = circuit.cone_of(po)
    for pi in circuit.inputs:
        if pi in cone:
            copy_pi(pi)
    driver = circuit.fanin(po)[0]
    po_lead_placeholder: tuple[int, ...] = (circuit.lead_index(po, 0),)
    root = copy_subtree(driver, po_lead_placeholder)
    new_po = out.add_gate(GateType.PO, circuit.gate_name(po), [root])
    origin[new_po] = po
    if out.gate_type(root) is GateType.PI:
        pending.append((new_po, 0, po_lead_placeholder))
    out.freeze()
    for gid, pin, orig_path in pending:
        branch_paths[out.lead_index(gid, pin)] = orig_path
    return LeafDag(circuit=out, origin=origin, branch_paths=branch_paths)


def has_internal_fanout(circuit: Circuit) -> bool:
    """True if any non-PI gate drives more than one input pin."""
    return any(
        len(circuit.fanout(g)) > 1
        for g in range(circuit.num_gates)
        if circuit.gate_type(g) is not GateType.PI
    )
