"""Record the ECO re-analysis speedup on the frozen Table-I suite.

For every suite circuit: apply K scripted *local* one-gate edits — the
shape a production ECO takes, a gate swap near a failing endpoint,
chosen deterministically as the flippable gates with the smallest dirty
footprint (fewest reachable POs, then fewest dirty-cone gates) — then
run the edited design once from scratch (storeless cone classify) and
once through :func:`repro.incremental.reanalyze` against a store warmed
with the base design's cone rows.  Asserts the two answers are
byte-identical and writes ``BENCH_eco.json`` at the repo root with
per-edit cold/warm wall times, per-edit reuse ratios (so the dirty
fraction is visible), and the suite-wide median speedup — the committed
number the incremental subsystem's "near-warm on changed circuits"
claim rests on.  Note the honest outliers: an edit that reaches every
cone (s1355-par has a single output cone) reuses nothing and lands
near 1x; the median is taken over the whole matrix regardless:

    PYTHONPATH=src python benchmarks/record_eco_bench.py

``--smoke`` is the CI guard: one circuit, one edit, driven through the
``repro-rd diff``/``reanalyze`` command line with ``--json``, asserting
the diff is mostly clean and the reuse ratio is positive.  It writes no
file and finishes in seconds:

    PYTHONPATH=src python benchmarks/record_eco_bench.py --smoke
"""

from __future__ import annotations

import contextlib
import io
import json
import platform
import statistics
import sys
import tempfile
from pathlib import Path

from repro.circuit.bench import write_bench
from repro.circuit.gates import GateType
from repro.classify.conditions import Criterion
from repro.gen.suite import get_circuit, table1_suite
from repro.incremental import cone_classify, cone_index, reanalyze
from repro.store.db import ResultStore

OUT = Path(__file__).resolve().parent.parent / "BENCH_eco.json"

EDITS_PER_CIRCUIT = 3

_FLIPS = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
}


def local_edit_sites(circuit, k: int) -> list:
    """The ``k`` most local flippable gates, deterministically: fewest
    reachable POs, then smallest total dirty-cone gate count, then the
    latest logic level (an endpoint-adjacent fix), then name."""
    index = cone_index(circuit)
    scored = []
    for gid in range(circuit.num_gates):
        if circuit.gate_type(gid) not in _FLIPS:
            continue
        reached = [c for c in index.cones if (c.mask >> gid) & 1]
        scored.append(
            (
                len(reached),
                sum(c.num_gates for c in reached),
                -circuit.level(gid),
                circuit.gate_name(gid),
            )
        )
    scored.sort()
    return [name for _pos, _gates, _level, name in scored[:k]]


def one_gate_edit(circuit, gate: str, tag: str):
    """A copy of ``circuit`` with the named gate's type flipped."""
    edited = circuit.copy(f"{circuit.name}-{tag}")
    gid = edited.gate_by_name(gate)
    edited.replace_gate(gate, _FLIPS[edited.gate_type(gid)], list(edited.fanin(gid)))
    return edited


def bench_circuit(circuit) -> list:
    rows = []
    for k, gate in enumerate(local_edit_sites(circuit, EDITS_PER_CIRCUIT)):
        edited = one_gate_edit(circuit, gate, f"eco{k}")
        cold = cone_classify(edited, Criterion.FS)
        with tempfile.TemporaryDirectory() as tmp:
            with ResultStore(Path(tmp) / "eco.sqlite") as store:
                report = reanalyze(
                    circuit, edited, store=store, criterion=Criterion.FS
                )
        if report.edited.table_bytes() != cold.table_bytes():
            raise AssertionError(
                f"{edited.name}: reanalyze diverged from from-scratch"
            )
        warm_s = report.edited.wall_seconds
        speedup = cold.wall_seconds / warm_s if warm_s > 0 else float("inf")
        rows.append(
            {
                "circuit": circuit.name,
                "edit": f"flip {gate}",
                "cones": report.edited.cones_total,
                "cones_reused": report.edited.cones_reused,
                "reuse_ratio": round(report.edited.reuse_ratio, 4),
                "cold_s": round(cold.wall_seconds, 4),
                "warm_s": round(warm_s, 4),
                "speedup": round(speedup, 1),
            }
        )
        print(
            f"{circuit.name:<16} flip {gate:<12} "
            f"reuse {report.edited.cones_reused}/{report.edited.cones_total}  "
            f"cold {cold.wall_seconds:>8.3f}s  warm {warm_s:>8.4f}s  "
            f"{speedup:>7.1f}x"
        )
    return rows


def main() -> int:
    rows = []
    for circuit in table1_suite():
        rows.extend(bench_circuit(circuit))
    speedups = sorted(r["speedup"] for r in rows)
    median = statistics.median(speedups)
    doc = {
        "benchmark": "eco-reanalyze",
        "unit": "wall seconds per FS cone-classify of a 1-gate edit",
        "suite": sorted({r["circuit"] for r in rows}),
        "python": platform.python_version(),
        "edits_per_circuit": EDITS_PER_CIRCUIT,
        "edit_selection": "local: fewest reachable POs, smallest dirty footprint",
        "totals": {
            "edits": len(rows),
            "cold_s": round(sum(r["cold_s"] for r in rows), 2),
            "warm_s": round(sum(r["warm_s"] for r in rows), 2),
            "median_speedup": round(median, 1),
            "min_speedup": speedups[0],
            "max_speedup": speedups[-1],
            "mean_reuse_ratio": round(
                statistics.mean(r["reuse_ratio"] for r in rows), 4
            ),
        },
        "edits": rows,
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"\nmedian speedup {median:.1f}x over {len(rows)} edits -> {OUT}")
    if median < 10.0:
        print("FAIL: median ECO speedup below the 10x target", file=sys.stderr)
        return 1
    return 0


def _cli_json(argv: list) -> dict:
    """Run the repro-rd CLI in-process and parse its --json output."""
    from repro.cli import main as cli_main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    if code not in (0, None):
        raise AssertionError(f"repro-rd {argv[0]} exited {code}")
    return json.loads(buffer.getvalue())


def smoke() -> int:
    """CI guard: the diff/reanalyze command line works end to end."""
    circuit = get_circuit("s499-ecc")
    (gate,) = local_edit_sites(circuit, 1)
    edited = one_gate_edit(circuit, gate, "smoke")
    with tempfile.TemporaryDirectory() as tmp:
        base_path = Path(tmp) / "base.bench"
        edited_path = Path(tmp) / "edited.bench"
        base_path.write_text(write_bench(circuit), encoding="utf-8")
        edited_path.write_text(write_bench(edited), encoding="utf-8")
        store_path = str(Path(tmp) / "eco.sqlite")

        diff = _cli_json(["diff", str(base_path), str(edited_path), "--json"])
        assert diff["counts"]["DIRTY"] >= 1, diff["counts"]
        assert diff["counts"]["CLEAN"] >= 1, diff["counts"]
        assert 0.0 < diff["reuse_possible"] < 1.0, diff

        report = _cli_json(
            [
                "reanalyze", str(base_path), str(edited_path),
                "--store", store_path, "--criterion", "fs", "--json",
            ]
        )
        assert report["reuse_ratio"] > 0.0, report["reuse_ratio"]
        assert report["edited"]["cones_reused"] >= 1, report["edited"]
        # an identical netlist pair is diff-clean and fully reused
        clean = _cli_json(
            [
                "reanalyze", str(base_path), str(base_path),
                "--store", store_path, "--criterion", "fs", "--json",
            ]
        )
        assert clean["diff"]["counts"]["DIRTY"] == 0, clean["diff"]
        assert clean["reuse_ratio"] == 1.0, clean["reuse_ratio"]
    print(
        f"eco smoke ok: flip {gate} on s499-ecc, "
        f"reuse_ratio={report['reuse_ratio']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(smoke() if "--smoke" in sys.argv[1:] else main())
