"""Timing-signoff queries: K-longest / above-slack robustly-testable paths.

The layered filter (fast to exact):

1. **enumerate** — :func:`repro.timing.kpaths.iter_paths_by_delay`
   streams logical paths slowest-first under the annotated
   :class:`DelayAssignment`; only the slow prefix is ever materialized.
2. **prefilter** — Lemma-2 local-implication check against the session's
   cached ``SIGMA_PI`` tables (pin-order π).  Sound for robustness
   regardless of π: ``T(C) ⊆ LP(σ^π)`` holds for *every* sort, so a
   rejection here proves the path is not robustly testable.
3. **escalate** (``exact=True`` only) — the incremental CDCL oracle
   refutes survivors that are outside true ``LP(σ^π)``.
4. **verdict** — a two-frame robust-test SAT query
   (:func:`repro.delaytest.robust_test`) confirms every reported path.
   Because this final stage runs in *all* modes, the row set is
   mode-independent: ``exact`` can only shift work between stages.

Store contract: kind ``"signoff"`` under the queried (domain) circuit's
``rdfp1:`` fingerprint; the variant carries the schema, the canonical
delay digest (``rdly1:``), and the query (``k=``/``slack=``).  Cached
rows are canonical lead positions — name-free, so isomorphic renames
stay safe — and every loaded row is structurally revalidated and its
delay recomputed before being served.
"""

from __future__ import annotations

import time

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import check_logical_path_tables
from repro.classify.session import CircuitSession
from repro.delaytest.testability import robust_test
from repro.errors import SignoffError
from repro.experiments.supervisor import RowFailure, TaskRunner
from repro.obs import get_registry, span
from repro.paths.path import LogicalPath, PhysicalPath
from repro.sorting.input_sort import InputSort
from repro.timing.annotate import delays_digest, materialize_delays
from repro.timing.delays import DelayAssignment
from repro.timing.kpaths import iter_paths_by_delay
from repro.timing.pathdelay import logical_path_delay
from repro.verdict.oracle import DEFAULT_MAX_CONFLICTS, VerdictOracle

from repro.signoff.report import (
    SIGNOFF_SCHEMA,
    SignoffReport,
    SignoffRow,
    merge_rows,
)

#: Default K for ``signoff()`` when neither ``k`` nor ``slack`` is given.
DEFAULT_K = 10

#: Guard on enumerated candidates per domain (prefilter + verdict work).
DEFAULT_MAX_CANDIDATES = 250_000

#: Frontier-state budget handed to the path enumerator.
DEFAULT_MAX_STATES = 10_000_000

_STAGE_COUNTERS = (
    "candidates",
    "prefilter_rejects",
    "oracle_refuted",
    "robust_refuted",
    "robust_confirmed",
)


def _zero_counters() -> dict:
    return {name: 0 for name in _STAGE_COUNTERS}


def row_from_path(
    circuit: Circuit, delay: float, lp: LogicalPath
) -> SignoffRow:
    """Spell one enumerated logical path as a :class:`SignoffRow`."""
    return SignoffRow(
        capture=circuit.gate_name(lp.path.sink(circuit)),
        source=circuit.gate_name(lp.path.source(circuit)),
        transition=lp.transition,
        delay=delay,
        pins=tuple(
            (circuit.gate_name(circuit.lead_dst(lead)),
             circuit.lead_pin(lead))
            for lead in lp.path.leads
        ),
    )


# -- store plumbing -----------------------------------------------------
def signoff_variant(
    session: CircuitSession,
    delays: DelayAssignment,
    k: "int | None",
    slack: "float | None",
) -> str:
    digest = delays_digest(delays, canonical=session.canonical)
    query = f"k={k}" if k is not None else f"slack={slack!r}"
    return f"{SIGNOFF_SCHEMA}|{digest}|{query}"


def _load_signoff_payload(
    payload: dict,
    session: CircuitSession,
    delays: DelayAssignment,
    slack: "float | None",
):
    """Strict never-wrong validation of a cached accepted-path set.

    Rows come back as ``(delay, LogicalPath)`` with delays *recomputed*
    from the live assignment (same left-to-right float accumulation as
    the enumerator, so values are bit-equal to a fresh run); any
    structural defect makes the whole entry a miss.
    """
    if payload.get("schema") != SIGNOFF_SCHEMA:
        return None
    raw = payload.get("rows")
    if not isinstance(raw, list):
        return None
    circuit = session.circuit
    lead_order = session.canonical.lead_order
    out = []
    seen = set()
    for entry in raw:
        if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
            return None
        final_value, positions = entry
        if final_value not in (0, 1) or not isinstance(positions, list):
            return None
        if not all(
            isinstance(p, int) and 0 <= p < len(lead_order)
            for p in positions
        ):
            return None
        leads = tuple(lead_order[p] for p in positions)
        if not leads:
            return None
        lp = LogicalPath(PhysicalPath(leads), final_value)
        lp.path.validate(circuit)  # PI→PO connectivity, raises on defect
        key = (leads, final_value)
        if key in seen:
            return None
        seen.add(key)
        delay = logical_path_delay(circuit, lp, delays)
        if slack is not None and delay < slack:
            return None
        out.append((delay, lp))
    return out


def _accepted_payload(session: CircuitSession, accepted) -> dict:
    """Serialize the accepted set as canonical lead positions, sorted —
    a pure function of the circuit's canonical form."""
    position_of = {
        lead: pos for pos, lead in enumerate(session.canonical.lead_order)
    }
    rows = sorted(
        (lp.final_value, [position_of[lead] for lead in lp.path.leads])
        for _delay, lp in accepted
    )
    return {
        "schema": SIGNOFF_SCHEMA,
        "rows": [[fv, positions] for fv, positions in rows],
    }


# -- the per-domain query ----------------------------------------------
def signoff_core(
    circuit,
    delays: "DelayAssignment | None" = None,
    *,
    k: "int | None" = None,
    slack: "float | None" = None,
    exact: bool = False,
    session: "CircuitSession | None" = None,
    store=None,
    seed: int = 0,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    max_states: int = DEFAULT_MAX_STATES,
    max_conflicts: int = DEFAULT_MAX_CONFLICTS,
) -> "tuple[list, dict, str]":
    """Answer one signoff query on a single (domain) circuit.

    Returns ``(rows, counters, source)``: canonical-ordered
    :class:`SignoffRow` lists (truncated to ``k`` in k-mode), the stage
    counters, and ``"computed"`` or ``"store"``.  The store caches the
    *accepted set up to the tie boundary* (order-free), so K-truncation
    and row ordering are always re-derived by the loading circuit.
    """
    k, slack = _resolve_query(k, slack)
    if not isinstance(circuit, Circuit):
        from repro.loading import as_core

        circuit = as_core(circuit)
    if delays is None:
        delays = materialize_delays(circuit, None, seed=seed)
    if delays.circuit is not circuit:
        raise ValueError("delay assignment belongs to a different circuit")
    if session is None:
        session = CircuitSession(circuit, store=store)
    registry = get_registry()
    variant = signoff_variant(session, delays, k, slack)
    cached = session._store_get(  # noqa: SLF001 - session store plumbing
        "signoff",
        variant,
        lambda payload: _load_signoff_payload(payload, session, delays, slack),
    )
    if cached is not None:
        registry.counter("signoff.row_store_hits").inc()
        return _finish(circuit, cached, k), _zero_counters(), "store"

    counters = _zero_counters()
    with span("signoff.domain", circuit=circuit.name):
        sort = InputSort.pin_order(circuit)
        tables = session.tables(Criterion.SIGMA_PI, sort)
        oracle = (
            VerdictOracle(circuit, max_conflicts=max_conflicts)
            if exact
            else None
        )
        accepted: list = []
        boundary: "float | None" = None
        for delay, lp in iter_paths_by_delay(
            circuit, delays, max_states=max_states
        ):
            if slack is not None and delay < slack:
                break
            if boundary is not None and delay < boundary:
                break
            counters["candidates"] += 1
            if counters["candidates"] > max_candidates:
                raise SignoffError(
                    f"{circuit.name}: more than {max_candidates} candidate "
                    f"paths enumerated; raise the slack threshold or the "
                    f"candidate budget"
                )
            if not check_logical_path_tables(circuit, tables, lp):
                counters["prefilter_rejects"] += 1
                continue
            if oracle is not None and not oracle.decide(
                lp, Criterion.SIGMA_PI, sort
            ).in_set:
                counters["oracle_refuted"] += 1
                continue
            if robust_test(circuit, lp) is None:
                counters["robust_refuted"] += 1
                continue
            counters["robust_confirmed"] += 1
            accepted.append((delay, lp))
            if k is not None and boundary is None and len(accepted) == k:
                boundary = delay  # keep consuming delay ties
    for name in _STAGE_COUNTERS:
        registry.counter(f"signoff.{name}").inc(counters[name])
    session._store_put(  # noqa: SLF001 - session store plumbing
        "signoff", variant, _accepted_payload(session, accepted)
    )
    return _finish(circuit, accepted, k), counters, "computed"


def _resolve_query(
    k: "int | None", slack: "float | None"
) -> "tuple[int | None, float | None]":
    if k is not None and slack is not None:
        raise ValueError("pass either k or slack, not both")
    if k is None and slack is None:
        k = DEFAULT_K
    if k is not None and k < 1:
        raise ValueError("k must be >= 1")
    return k, slack


def _finish(circuit: Circuit, accepted, k: "int | None") -> list:
    rows = [row_from_path(circuit, delay, lp) for delay, lp in accepted]
    rows.sort(key=lambda row: row.sort_key())
    if k is not None:
        rows = rows[:k]
    return rows


# -- scan-domain decomposition -----------------------------------------
def domain_circuits(core: Circuit) -> list:
    """``(capture name, cone, delays mapper)`` per output of ``core``.

    Each capture point's cone is an independent single-output circuit
    (gate names preserved), the unit the store fingerprints, the fleet
    hashes, and the workers compute.  The mapper transfers a core
    :class:`DelayAssignment` onto the cone gate-for-gate, so shared
    logic sees identical delays in every domain.
    """
    out = []
    for po in core.outputs:
        cone, mapping = core.extract_cone(po)

        def map_delays(
            delays: DelayAssignment, cone=cone, mapping=mapping
        ) -> DelayAssignment:
            rise = [0.0] * cone.num_gates
            fall = [0.0] * cone.num_gates
            for old, new in mapping.items():
                rise[new] = delays.rise[old]
                fall[new] = delays.fall[old]
            return DelayAssignment(
                circuit=cone, rise=tuple(rise), fall=tuple(fall)
            )

        out.append((core.gate_name(po), cone, map_delays))
    return out


def _domain_task(payload) -> "tuple[list, dict, str]":
    """Picklable per-domain worker: one cone, one query."""
    (cone, rise, fall, k, slack, exact, store,
     max_candidates, max_states, max_conflicts) = payload
    delays = DelayAssignment(circuit=cone, rise=rise, fall=fall)
    return signoff_core(
        cone,
        delays,
        k=k,
        slack=slack,
        exact=exact,
        store=store,
        max_candidates=max_candidates,
        max_states=max_states,
        max_conflicts=max_conflicts,
    )


# -- the public query --------------------------------------------------
def signoff(
    source,
    *,
    k: "int | None" = None,
    slack: "float | None" = None,
    exact: bool = False,
    scan: "bool | None" = None,
    delays: "DelayAssignment | None" = None,
    annotations: "dict | None" = None,
    seed: int = 0,
    base: str = "random",
    store=None,
    jobs: int = 1,
    runner: "TaskRunner | None" = None,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    max_states: int = DEFAULT_MAX_STATES,
    max_conflicts: int = DEFAULT_MAX_CONFLICTS,
) -> SignoffReport:
    """K-longest / above-slack robustly-testable paths of ``source``.

    ``source`` is anything :func:`repro.loading.load` resolves; a
    ``.bench`` path additionally contributes its embedded ``# delay:``
    annotations and a ``<stem>.delays`` sidecar (sidecar wins).  Each
    capture domain runs as an independent, store-cached job — fanned
    across ``jobs`` processes — and the merged table is byte-identical
    at any job count, matching a whole-core run of :func:`signoff_core`.
    """
    from pathlib import Path

    from repro.loading import load
    from repro.timing.annotate import (
        parse_delay_annotations,
        parse_delays_file,
        sidecar_path,
    )

    start = time.perf_counter()
    k, slack = _resolve_query(k, slack)
    file_annotations: dict = {}
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".bench" and path.exists():
            file_annotations.update(
                parse_delay_annotations(path.read_text(), source=str(path))
            )
            sidecar = sidecar_path(path)
            if sidecar.exists():
                file_annotations.update(parse_delays_file(sidecar))
    loaded = load(source, scan=scan)
    core = loaded.as_core()
    if delays is None:
        merged = dict(file_annotations)
        merged.update(annotations or {})
        delays = materialize_delays(core, merged, seed=seed, base=base)
    elif delays.circuit is not core:
        raise ValueError("delay assignment belongs to a different circuit")
    digest = delays_digest(delays)

    domains = domain_circuits(core)
    payloads = []
    for _capture, cone, map_delays in domains:
        cone_delays = map_delays(delays)
        payloads.append(
            (cone, cone_delays.rise, cone_delays.fall, k, slack, exact,
             store, max_candidates, max_states, max_conflicts)
        )
    labels = [f"{core.name}:signoff[{capture}]" for capture, _c, _m in domains]
    if runner is None:
        runner = TaskRunner(jobs=jobs)
    registry = get_registry()
    registry.counter("signoff.requests").inc()
    registry.counter("signoff.domains").inc(len(domains))
    with span("signoff.query", circuit=core.name, mode="k" if k else "slack"):
        outcomes = runner.map(_domain_task, payloads, labels=labels)
    counters = _zero_counters()
    sources: dict = {}
    row_lists = []
    for (capture, _cone, _map), outcome in zip(domains, outcomes):
        if isinstance(outcome, RowFailure):
            raise SignoffError(
                f"signoff domain {outcome.label} failed "
                f"({outcome.kind}): {outcome.message}"
            )
        rows, domain_counters, domain_source = outcome
        row_lists.append(rows)
        sources[capture] = domain_source
        for name in _STAGE_COUNTERS:
            counters[name] += domain_counters[name]
    return SignoffReport(
        circuit=core.name,
        mode="k" if k is not None else "slack",
        k=k,
        slack=slack,
        exact=exact,
        delays_digest=digest,
        domains=tuple(sorted(capture for capture, _c, _m in domains)),
        rows=merge_rows(row_lists, k),
        counters=counters,
        sources=sources,
        wall_seconds=time.perf_counter() - start,
    )


__all__ = [
    "DEFAULT_K",
    "DEFAULT_MAX_CANDIDATES",
    "DEFAULT_MAX_STATES",
    "domain_circuits",
    "row_from_path",
    "signoff",
    "signoff_core",
    "signoff_variant",
]
