"""Unit tests for the path delay fault simulator (two-pattern coverage)."""

import pytest

from repro.delaytest.simulator import (
    robust_coverage_of_test_set,
    sensitized_paths,
    simulate_test_set,
)
from repro.delaytest.testability import robust_test
from repro.paths.enumerate import enumerate_logical_paths


class TestSensitizedPaths:
    def test_no_transition_no_paths(self, example_circuit):
        cov = sensitized_paths(example_circuit, (0, 0, 0), (0, 0, 0))
        assert not cov.robust and not cov.nonrobust

    def test_single_input_rise(self, example_circuit):
        cov = sensitized_paths(example_circuit, (0, 0, 0), (1, 0, 0))
        names = {lp.describe(example_circuit) for lp in cov.robust}
        assert names == {"a -> g_or -> out [0->1]"}

    def test_robust_subset_of_nonrobust(self, small_circuits):
        from repro.logic.simulate import all_vectors

        for circuit in small_circuits:
            n = len(circuit.inputs)
            for v1 in all_vectors(n):
                for v2 in all_vectors(n):
                    cov = sensitized_paths(circuit, v1, v2)
                    assert cov.robust <= cov.nonrobust

    def test_sensitized_paths_are_real(self, example_circuit):
        cov = sensitized_paths(example_circuit, (1, 1, 1), (0, 1, 0))
        for lp in cov.nonrobust:
            lp.path.validate(example_circuit)

    def test_budget_guard(self, example_circuit):
        with pytest.raises(RuntimeError):
            sensitized_paths(example_circuit, (0, 0, 0), (1, 0, 0), max_paths=0)


class TestAgainstPerPathOracle:
    def test_union_over_all_pairs_equals_robust_testability(
        self, small_circuits
    ):
        """A path is robustly testable iff SOME pair robustly
        sensitizes it: the simulator unioned over all pairs must equal
        the per-path SAT verdicts."""
        from repro.delaytest.testability import is_robustly_testable
        from repro.logic.simulate import all_vectors

        for circuit in small_circuits:
            n = len(circuit.inputs)
            pairs = [
                (v1, v2)
                for v1 in all_vectors(n)
                for v2 in all_vectors(n)
            ]
            cov = simulate_test_set(circuit, pairs)
            for lp in enumerate_logical_paths(circuit):
                assert (lp in cov.robust) == is_robustly_testable(
                    circuit, lp
                ), f"{circuit.name}: {lp.describe(circuit)}"

    def test_union_matches_nonrobust_testability(self, example_circuit):
        from repro.delaytest.testability import is_nonrobustly_testable
        from repro.logic.simulate import all_vectors

        pairs = [
            (v1, v2)
            for v1 in all_vectors(3)
            for v2 in all_vectors(3)
        ]
        cov = simulate_test_set(example_circuit, pairs)
        for lp in enumerate_logical_paths(example_circuit):
            if lp in cov.nonrobust:
                assert is_nonrobustly_testable(example_circuit, lp)


class TestGeneratedTestsAreSimulatedAsCovering:
    def test_sat_generated_pair_covers_its_path(self, small_circuits):
        for circuit in small_circuits:
            for lp in enumerate_logical_paths(circuit):
                pair = robust_test(circuit, lp)
                if pair is None:
                    continue
                cov = sensitized_paths(circuit, *pair)
                assert lp in cov.robust, (
                    f"{circuit.name}: generated test does not cover "
                    f"{lp.describe(circuit)}"
                )


class TestCoverageMetric:
    def test_full_coverage_with_all_pairs(self, example_circuit):
        from repro.logic.simulate import all_vectors

        pairs = [
            (v1, v2) for v1 in all_vectors(3) for v2 in all_vectors(3)
        ]
        robust = [
            lp
            for lp in enumerate_logical_paths(example_circuit)
            if robust_test(example_circuit, lp) is not None
        ]
        assert robust_coverage_of_test_set(
            example_circuit, pairs, robust
        ) == pytest.approx(1.0)

    def test_empty_targets(self, example_circuit):
        assert robust_coverage_of_test_set(example_circuit, [], []) == 1.0
