"""Random two-level covers and a small multi-level factoring pass.

Stand-in for the paper's Table III workload (two-level MCNC benchmarks
synthesised into multi-level circuits with SIS ``script.rugged``): we
generate seeded random covers and factor them with

* greedy *common-cube extraction* — the literal pair shared by the most
  product terms becomes a new 2-input AND node, repeatedly, and
* structural hashing of the remaining AND/OR trees (identical
  sub-products/sub-sums are built once).

The result is a genuine multi-level network with internal fanout and
reconvergence — exactly the circuit class on which RD-sets are
non-trivial and the exact baseline still terminates.  Functional
equivalence to the cover is verified in the test suite.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.pla import TwoLevelCover


def random_cover(
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
    seed: int = 0,
    min_literals: int = 2,
    max_literals: int | None = None,
    redundancy: float = 0.3,
    name: str | None = None,
) -> TwoLevelCover:
    """A seeded random cover; every output gets at least one cube.

    ``redundancy`` is the probability that a cube is generated as a
    *specialisation* of an earlier cube (same literals plus extra ones,
    driving the same outputs).  Specialised cubes are absorbed by their
    parents functionally, but their AND terms remain in the netlist —
    the canonical source of robust dependent paths (the paper's example
    circuit is exactly ``a + bc + c`` with ``bc`` absorbed by ``c``).
    Un-optimised MCNC covers behave the same way, which is why the
    paper's Table III circuits have large RD fractions.
    """
    if num_inputs < 2 or num_outputs < 1 or num_cubes < num_outputs:
        raise ValueError("need >=2 inputs and at least one cube per output")
    if not 0 <= redundancy < 1:
        raise ValueError("redundancy must be in [0, 1)")
    max_literals = max_literals or min(num_inputs, min_literals + 3)
    rng = random.Random(seed)
    cover = TwoLevelCover(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        name=name or f"cover_i{num_inputs}_o{num_outputs}_c{num_cubes}_s{seed}",
    )
    for t in range(num_cubes):
        if t >= num_outputs and cover.cubes and rng.random() < redundancy:
            # Specialise an earlier cube: add 1-2 extra literals.
            parent_in, parent_out = rng.choice(cover.cubes)
            in_part = list(parent_in)
            free = [i for i, lit in enumerate(in_part) if lit == "-"]
            extra = rng.sample(free, min(len(free), rng.randint(1, 2)))
            if not extra:
                continue
            for p in extra:
                in_part[p] = "1" if rng.random() < 0.5 else "0"
            cover.add_cube("".join(in_part), parent_out)
            continue
        k = rng.randint(min_literals, max_literals)
        positions = rng.sample(range(num_inputs), k)
        in_part = ["-"] * num_inputs
        for p in positions:
            in_part[p] = "1" if rng.random() < 0.5 else "0"
        out_part = ["0"] * num_outputs
        out_part[t % num_outputs] = "1"  # guarantee coverage round-robin
        for j in range(num_outputs):
            if out_part[j] == "0" and rng.random() < 0.3:
                out_part[j] = "1"
        cover.add_cube("".join(in_part), "".join(out_part))
    return cover


def factored_circuit(cover: TwoLevelCover, name: str | None = None) -> Circuit:
    """Multi-level implementation of ``cover`` via common-cube extraction
    and structural hashing (see module docstring)."""
    circuit = Circuit(name or f"{cover.name}_ml")
    pis = [circuit.add_gate(GateType.PI, nm) for nm in cover.input_names]
    inverter: dict[int, int] = {}
    and_cache: dict[tuple[int, int], int] = {}
    or_cache: dict[tuple[int, int], int] = {}

    def lit_gate(i: int, positive: bool) -> int:
        if positive:
            return pis[i]
        if i not in inverter:
            inverter[i] = circuit.add_gate(
                GateType.NOT, f"n_{cover.input_names[i]}", [pis[i]]
            )
        return inverter[i]

    def and2(a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        if key not in and_cache:
            and_cache[key] = circuit.add_gate(
                GateType.AND, f"a{len(and_cache)}", list(key)
            )
        return and_cache[key]

    def or2(a: int, b: int) -> int:
        key = (min(a, b), max(a, b))
        if key not in or_cache:
            or_cache[key] = circuit.add_gate(
                GateType.OR, f"o{len(or_cache)}", list(key)
            )
        return or_cache[key]

    # Cubes as sets of gate tokens.
    cubes: list[set[int]] = []
    for in_part, _out in cover.cubes:
        tokens = {
            lit_gate(i, lit == "1")
            for i, lit in enumerate(in_part)
            if lit != "-"
        }
        if not tokens:
            raise ValueError("universal cube cannot be factored")
        cubes.append(tokens)
    # Greedy common-cube (pair) extraction.
    while True:
        pair_count: Counter = Counter()
        for cube in cubes:
            if len(cube) < 2:
                continue
            ordered = sorted(cube)
            for ai in range(len(ordered)):
                for bi in range(ai + 1, len(ordered)):
                    pair_count[(ordered[ai], ordered[bi])] += 1
        if not pair_count:
            break
        (a, b), count = pair_count.most_common(1)[0]
        if count < 2:
            break
        node = and2(a, b)
        for cube in cubes:
            if a in cube and b in cube:
                cube.discard(a)
                cube.discard(b)
                cube.add(node)
    # Remaining cubes: hash-consed left-fold AND trees on sorted tokens.
    term_gates: list[int] = []
    for cube in cubes:
        ordered = sorted(cube)
        node = ordered[0]
        for nxt in ordered[1:]:
            node = and2(node, nxt)
        term_gates.append(node)
    # OR planes per output, hash-consed as well.
    for j, out_name in enumerate(cover.output_names):
        terms = sorted(
            {
                term_gates[t]
                for t, (_in, out_part) in enumerate(cover.cubes)
                if out_part[j] == "1"
            }
        )
        if not terms:
            raise ValueError(f"output {out_name!r} has an empty ON-set")
        node = terms[0]
        for nxt in terms[1:]:
            node = or2(node, nxt)
        circuit.add_gate(GateType.PO, out_name, [node])
    return circuit.freeze()
