"""Unit tests for gate-type properties and evaluation."""

import pytest

from repro.circuit.gates import (
    CONTROLLABLE_TYPES,
    GateType,
    controlling_value,
    evaluate_gate,
    gate_output_for_oneshot,
    has_controlling_value,
    is_inverting,
    noncontrolling_value,
)


class TestControllingValues:
    def test_and_family_controlled_by_zero(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0

    def test_or_family_controlled_by_one(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1

    def test_noncontrolling_is_complement(self):
        for gtype in CONTROLLABLE_TYPES:
            assert noncontrolling_value(gtype) == 1 - controlling_value(gtype)

    @pytest.mark.parametrize(
        "gtype", [GateType.NOT, GateType.BUF, GateType.PI, GateType.PO]
    )
    def test_uncontrollable_types_raise(self, gtype):
        with pytest.raises(ValueError):
            controlling_value(gtype)
        assert not has_controlling_value(gtype)


class TestInversion:
    def test_inverting_gates(self):
        assert is_inverting(GateType.NAND)
        assert is_inverting(GateType.NOR)
        assert is_inverting(GateType.NOT)

    def test_non_inverting_gates(self):
        for gtype in (GateType.AND, GateType.OR, GateType.BUF, GateType.PI):
            assert not is_inverting(gtype)


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "gtype,table",
        [
            (GateType.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (GateType.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (GateType.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (GateType.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
        ],
    )
    def test_two_input_truth_tables(self, gtype, table):
        for inputs, expected in table.items():
            assert evaluate_gate(gtype, inputs) == expected

    def test_wide_gates(self):
        assert evaluate_gate(GateType.AND, [1, 1, 1, 1]) == 1
        assert evaluate_gate(GateType.AND, [1, 1, 0, 1]) == 0
        assert evaluate_gate(GateType.NOR, [0, 0, 0]) == 1

    def test_not_and_buf(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.NOT, [1]) == 0
        assert evaluate_gate(GateType.BUF, [1]) == 1
        assert evaluate_gate(GateType.PO, [0]) == 0
        assert evaluate_gate(GateType.PI, [1]) == 1

    def test_arity_errors(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, [0, 1])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.BUF, [])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [])

    def test_oneshot_matches_eval(self):
        for gtype in CONTROLLABLE_TYPES:
            c = controlling_value(gtype)
            nc = 1 - c
            assert gate_output_for_oneshot(gtype, True) == evaluate_gate(
                gtype, [c, nc]
            )
            assert gate_output_for_oneshot(gtype, False) == evaluate_gate(
                gtype, [nc, nc]
            )
