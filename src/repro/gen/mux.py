"""Multiplexer trees and decoders.

Mux trees are the canonical robust-dependent workload: the hazard-cover
style sharing of select lines across levels yields paths that no
complete stabilizing assignment needs.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit


def mux_tree(levels: int, name: str | None = None) -> Circuit:
    """A ``2^levels``-to-1 multiplexer built from 2:1 muxes; each level
    shares one select input across all its muxes."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    b = CircuitBuilder(name or f"muxtree{levels}")
    selects = [b.pi(f"s{k}") for k in range(levels)]
    nodes = [b.pi(f"d{i}") for i in range(1 << levels)]
    for k in range(levels):
        nxt = []
        for i in range(0, len(nodes), 2):
            nxt.append(
                b.mux(selects[k], nodes[i], nodes[i + 1], name=f"m{k}_{i // 2}")
            )
        nodes = nxt
    b.po(nodes[0], "out")
    return b.build()


def decoder(width: int, name: str | None = None) -> Circuit:
    """``width``-to-``2^width`` one-hot decoder (AND of literals)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"dec{width}")
    bits = [b.pi(f"x{i}") for i in range(width)]
    inv = [b.not_(bits[i], f"nx{i}") for i in range(width)]
    for code in range(1 << width):
        literals = [
            bits[i] if (code >> i) & 1 else inv[i] for i in range(width)
        ]
        if width == 1:
            b.po(b.buf(literals[0], name=f"y{code}_buf"), f"y{code}")
        else:
            b.po(b.and_(*literals, name=f"y{code}_and"), f"y{code}")
    return b.build()
