"""Unit tests for the input-sort heuristics (Section V)."""

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.paths.count import count_paths
from repro.sorting.heuristics import (
    heuristic1_sort,
    heuristic2_analysis,
    heuristic2_sort,
    pin_order_sort,
    random_sort,
)


class TestHeuristic1:
    def test_orders_by_path_count(self, example_circuit):
        sort = heuristic1_sort(example_circuit)
        counts = count_paths(example_circuit)
        for gid in range(example_circuit.num_gates):
            leads = sorted(
                example_circuit.input_leads(gid), key=sort.rank
            )
            values = [counts.through_lead[l] for l in leads]
            assert values == sorted(values)

    def test_beats_pin_order_on_example(self, example_circuit):
        """Heuristic 1 selects 6 paths where pin order selects all 8."""
        res_pin = classify(
            example_circuit, Criterion.SIGMA_PI, sort=pin_order_sort(example_circuit)
        )
        res_h1 = classify(
            example_circuit, Criterion.SIGMA_PI, sort=heuristic1_sort(example_circuit)
        )
        assert res_h1.accepted < res_pin.accepted


class TestHeuristic2:
    def test_analysis_contains_both_passes(self, example_circuit):
        analysis = heuristic2_analysis(example_circuit)
        assert analysis.fs_result.criterion is Criterion.FS
        assert analysis.nr_result.criterion is Criterion.NR
        assert len(analysis.fs_result.lead_ctrl_counts) == example_circuit.num_leads

    def test_measure_nonnegative(self, small_circuits):
        """FS_c^sup(l) superset of T_c^sup(l): the measure is >= 0.
        (Monotone: NR assumes strictly more, so NR-accepted implies
        FS-accepted path-by-path.)"""
        for circuit in small_circuits:
            analysis = heuristic2_analysis(circuit)
            assert all(m >= 0 for m in analysis.measure), circuit.name

    def test_finds_the_optimum_on_example(self, example_circuit):
        sort = heuristic2_sort(example_circuit)
        result = classify(example_circuit, Criterion.SIGMA_PI, sort=sort)
        assert result.accepted == 5

    def test_heu2_at_least_as_good_as_heu1_on_example(self, example_circuit):
        res1 = classify(
            example_circuit, Criterion.SIGMA_PI,
            sort=heuristic1_sort(example_circuit),
        )
        res2 = classify(
            example_circuit, Criterion.SIGMA_PI,
            sort=heuristic2_sort(example_circuit),
        )
        assert res2.accepted <= res1.accepted


class TestRandomSort:
    def test_deterministic_per_seed(self, example_circuit):
        a = random_sort(example_circuit, seed=3)
        b = random_sort(example_circuit, seed=3)
        assert all(
            a.rank(l) == b.rank(l) for l in range(example_circuit.num_leads)
        )

    def test_different_seeds_differ_somewhere(self, example_circuit):
        sorts = [random_sort(example_circuit, seed=s) for s in range(8)]
        signatures = {
            tuple(s.rank(l) for l in range(example_circuit.num_leads))
            for s in sorts
        }
        assert len(signatures) > 1


class TestSigmaMonotonicityAgainstInverse:
    def test_inverse_never_beats_heu2_on_small_circuits(self, small_circuits):
        """The paper's Heu2-bar column: the inverted sort's RD share
        collapses (never exceeds Heu2's)."""
        for circuit in small_circuits:
            sort = heuristic2_sort(circuit)
            good = classify(circuit, Criterion.SIGMA_PI, sort=sort)
            bad = classify(circuit, Criterion.SIGMA_PI, sort=sort.inverted())
            assert bad.rd_count <= good.rd_count, circuit.name
