"""Fault-tolerant blocking client for the analysis service.

A synchronous wrapper over one socket speaking the JSON-lines protocol
of :mod:`repro.service.protocol`, used by ``repro-rd classify
--remote`` and the service benchmarks.  Structured server errors
rehydrate as :class:`~repro.errors.RemoteError` (carrying the server's
exception class name in ``error_type`` and, for ``Overloaded`` sheds,
the backoff hint in ``retry_after``); transport and framing problems
raise :class:`~repro.errors.ServiceError` / ``ProtocolError``.

Fault tolerance, opt-in via a :class:`RetryPolicy`:

* **connect retry** — :meth:`ServiceClient.connect` retries a refused
  or reset connection with exponentially growing, jittered delays
  (a respawning fleet worker or a restarting daemon comes back within
  a few hundred milliseconds; the jitter keeps a thundering herd of
  clients from reconnecting in lockstep).
* **request retry** — a request that dies at the transport level
  (connection reset, server gone mid-answer) reconnects and resends,
  but **only for idempotent ops** (:data:`IDEMPOTENT_OPS` — every
  current op is a pure read/compute; a future mutating op must not be
  listed or a retry could double-apply it).  Structured errors from
  the server are answers, never retried.
* **deadline propagation** — a ``classify(deadline=...)`` budget is a
  *total* budget: every (re)send carries the remaining budget (shrunk
  by elapsed time including backoff sleeps), the server honors it
  server-side, and a locally exhausted budget raises
  :class:`~repro.errors.TaskTimeout` without another round trip.

Closing the client from another thread while a request is being read
is safe: the reader raises a clean ``RemoteError`` with ``error_type
== "ClientClosed"`` instead of a bare ``OSError`` or a partial-JSON
decode error.

Usage::

    from repro.service.client import RetryPolicy, ServiceClient

    with ServiceClient.connect("127.0.0.1:7463", retry=RetryPolicy()) as client:
        result = client.classify(circuit="c17", deadline=30.0)
        print(result["rd_percent"])
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Callable

from repro.circuit.netlist import Circuit
from repro.errors import (
    ProtocolError,
    RemoteError,
    ServiceError,
    TaskTimeout,
)
from repro.service import protocol

__all__ = ["IDEMPOTENT_OPS", "RetryPolicy", "ServiceClient"]

#: ops a broken transport may transparently resend — all pure reads or
#: deterministic computations; never add a mutating op
IDEMPOTENT_OPS = frozenset(
    {"classify", "metrics", "ping", "signoff", "stats", "tightness"}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential, jittered backoff.

    ``attempts`` bounds the *total* number of tries (1 = no retry).
    The delay before retry *k* (0-based) is ``base_delay * 2**k``
    capped at ``max_delay``, then spread by ``±jitter`` (a fraction of
    the delay) so a fleet of clients does not reconnect in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, rng=None) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered."""
        rng = random.random if rng is None else rng
        base = min(self.max_delay, self.base_delay * (2 ** attempt))
        return base * (1.0 + self.jitter * (2.0 * rng() - 1.0))


class _TransportError(ServiceError):
    """Internal: the connection died mid-request — retriable for
    idempotent ops.  Escapes as a plain :class:`ServiceError` when
    retries are exhausted or not configured."""


class ServiceClient:
    """One persistent connection to a running analysis server (plain
    daemon or fleet front-end — the protocol is identical)."""

    def __init__(
        self,
        sock: socket.socket,
        spec: "str | None" = None,
        timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
    ):
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0
        self._spec = spec
        self._timeout = timeout
        self.retry = retry
        self._closed = False

    # -- connecting -----------------------------------------------------
    @classmethod
    def connect(
        cls,
        spec: str,
        timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> "ServiceClient":
        """Connect to ``host:port`` or a unix socket path, retrying a
        refused/reset connection per ``retry`` (None = one attempt)."""
        return cls(
            cls._open(spec, timeout, retry),
            spec=spec, timeout=timeout, retry=retry,
        )

    @staticmethod
    def _open(
        spec: str, timeout: "float | None", retry: "RetryPolicy | None"
    ) -> socket.socket:
        attempts = retry.attempts if retry is not None else 1
        last_exc: "Exception | None" = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(retry.delay(attempt - 1))
            try:
                if ":" in spec:
                    host, _, port_text = spec.rpartition(":")
                    return socket.create_connection(
                        (host or "127.0.0.1", int(port_text)),
                        timeout=timeout,
                    )
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(spec)
                return sock
            except ValueError as exc:
                # a malformed port number never fixes itself — fail now
                raise ServiceError(
                    f"cannot connect to analysis server at {spec!r}: {exc}"
                ) from exc
            except OSError as exc:
                last_exc = exc
        raise ServiceError(
            f"cannot connect to analysis server at {spec!r} "
            f"after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _reconnect(self) -> None:
        if self._spec is None:
            raise ServiceError("cannot reconnect: no address on record")
        try:
            self._file.close()
        except OSError:
            pass
        self._sock.close()
        # one attempt here: request() owns the backoff/attempt budget
        self._sock = self._open(self._spec, self._timeout, None)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        # the flag first: a reader thread that wakes up mid-request maps
        # its transport error to a clean ClientClosed RemoteError
        self._closed = True
        # shutdown next: it unblocks a reader thread parked in recv()
        # (file.close() alone would deadlock on the buffer lock it holds)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        try:
            self._file.close()
        except OSError:
            pass  # best effort: flushing a dead socket is not an error
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol ---------------------------------------------------
    def request(
        self,
        op: str,
        on_event: "Callable[[dict], None] | None" = None,
        **fields,
    ) -> dict:
        """One logical request: send, stream events to ``on_event``,
        return the final ``result`` (or raise :class:`RemoteError`).

        With a :class:`RetryPolicy` and an idempotent ``op``, a
        transport-level failure reconnects and resends within the
        policy's attempt budget; the ``deadline`` field (if any) is
        treated as a total budget and shrinks across attempts.
        """
        budget = fields.get("deadline")
        t0 = time.monotonic()
        retriable = (
            self.retry is not None
            and op in IDEMPOTENT_OPS
            and self._spec is not None
        )
        attempts = self.retry.attempts if retriable else 1
        last_exc: "Exception | None" = None
        for attempt in range(attempts):
            if attempt:
                delay = self.retry.delay(attempt - 1)
                if budget is not None and (
                    time.monotonic() - t0 + delay >= float(budget)
                ):
                    raise TaskTimeout(op, float(budget))
                time.sleep(delay)
                try:
                    self._reconnect()
                except ServiceError as exc:
                    last_exc = exc
                    continue
            send_fields = dict(fields)
            if budget is not None and attempt:
                # the first send carries the caller's budget untouched —
                # the server is authoritative; retries carry what's left
                remaining = float(budget) - (time.monotonic() - t0)
                if remaining <= 0:
                    raise TaskTimeout(op, float(budget))
                send_fields["deadline"] = remaining
            try:
                return self._round_trip(op, send_fields, on_event)
            except _TransportError as exc:
                last_exc = exc
        assert last_exc is not None
        raise ServiceError(
            f"{op} failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _client_closed(self, cause: BaseException) -> RemoteError:
        error = RemoteError(
            "ClientClosed", "client closed while a request was in flight"
        )
        error.__cause__ = cause
        return error

    def _round_trip(
        self,
        op: str,
        fields: dict,
        on_event: "Callable[[dict], None] | None",
    ) -> dict:
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op}
        message.update(fields)
        try:
            self._file.write(protocol.encode_line(message))
            self._file.flush()
        except (OSError, ValueError) as exc:
            if self._closed:
                raise self._client_closed(exc) from exc
            raise _TransportError(f"send failed: {exc}") from exc
        while True:
            try:
                line = self._file.readline(protocol.MAX_LINE + 2)
            except (OSError, ValueError) as exc:
                if self._closed:
                    raise self._client_closed(exc) from exc
                raise _TransportError(f"receive failed: {exc}") from exc
            if not line:
                if self._closed:
                    raise self._client_closed(
                        ConnectionResetError("closed locally")
                    )
                raise _TransportError(
                    "server closed the connection before answering"
                )
            try:
                answer = protocol.decode_line(line)
            except ProtocolError as exc:
                if self._closed:
                    # a torn line from our own shutdown, not the server
                    raise self._client_closed(exc) from exc
                raise
            if answer.get("id") != request_id:
                continue  # a stale event from an abandoned request
            if "event" in answer:
                if on_event is not None:
                    on_event(answer)
                continue
            if answer.get("ok"):
                result = answer.get("result")
                if not isinstance(result, dict):
                    raise ProtocolError("ok response without a result object")
                return result
            error = answer.get("error")
            if not isinstance(error, dict):
                raise ProtocolError("error response without an error object")
            remote = RemoteError(
                str(error.get("type", "ReproError")),
                str(error.get("message", "")),
            )
            retry_after = error.get("retry_after")
            if isinstance(retry_after, (int, float)):
                remote.retry_after = float(retry_after)
            raise remote

    # -- convenience ops ------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def metrics(self) -> dict:
        """The server's telemetry snapshot (``repro-rd metrics --remote``);
        a fleet front-end answers its own registry merged with every
        live worker's."""
        return self.request("metrics")

    def classify(
        self,
        circuit: "Circuit | str | None" = None,
        bench: "str | None" = None,
        criterion: str = "sigma",
        sort: str = "heu2",
        max_accepted: "int | None" = None,
        deadline: "float | None" = None,
        on_event: "Callable[[dict], None] | None" = None,
        cones: bool = False,
    ) -> dict:
        """Classify a suite circuit (by name), ``.bench`` text, or an
        in-memory :class:`~repro.circuit.netlist.Circuit` (serialized to
        ``.bench`` on the wire).  ``deadline`` is a total budget across
        retries, honored server-side from whatever remains per hop.
        ``cones=True`` requests cone granularity (the ECO path): the
        server reuses stored cone rows where it can and the result
        carries a ``"cone_stats"`` reuse summary."""
        fields: dict = {"criterion": criterion, "sort": sort}
        if cones:
            fields["cones"] = True
        if isinstance(circuit, Circuit):
            from repro.circuit.bench import write_bench

            fields["bench"] = write_bench(circuit)
            fields["name"] = circuit.name
        elif circuit is not None:
            fields["circuit"] = circuit
        if bench is not None:
            fields["bench"] = bench
        if max_accepted is not None:
            fields["max_accepted"] = max_accepted
        if deadline is not None:
            fields["deadline"] = deadline
        return self.request("classify", on_event=on_event, **fields)

    def tightness(
        self,
        circuit: "Circuit | str | None" = None,
        bench: "str | None" = None,
        criterion: str = "sigma",
        sort: str = "heu2",
        max_accepted: "int | None" = None,
        deadline: "float | None" = None,
        on_event: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """Decide exact vs. approximate membership for one circuit (the
        Lemma-2 gap, via :mod:`repro.verdict`).  The result is a single
        tightness row — verdict counts, both RD percentages, witness
        replays and solver diagnostics — plus fingerprint and session
        stats.  A circuit whose classifier accepts more than
        ``max_accepted`` paths answers a structured ``ClassifyError``."""
        fields: dict = {"criterion": criterion, "sort": sort}
        if isinstance(circuit, Circuit):
            from repro.circuit.bench import write_bench

            fields["bench"] = write_bench(circuit)
            fields["name"] = circuit.name
        elif circuit is not None:
            fields["circuit"] = circuit
        if bench is not None:
            fields["bench"] = bench
        if max_accepted is not None:
            fields["max_accepted"] = max_accepted
        if deadline is not None:
            fields["deadline"] = deadline
        return self.request("tightness", on_event=on_event, **fields)

    def signoff(
        self,
        circuit: "Circuit | str | None" = None,
        bench: "str | None" = None,
        k: "int | None" = None,
        slack: "float | None" = None,
        exact: bool = False,
        delays: "str | None" = None,
        seed: int = 0,
        deadline: "float | None" = None,
        on_event: "Callable[[dict], None] | None" = None,
    ) -> dict:
        """K-longest (or above-slack) robustly-testable paths of one
        circuit under an annotated delay assignment
        (:mod:`repro.signoff`).  ``delays`` is sidecar-format annotation
        text covering every non-PI gate (the wire never falls back);
        without it the server derives the deterministic seeded
        assignment from ``seed``.  Scan designs fan out client-side —
        one request per capture cone; see
        :func:`repro.signoff.signoff_remote`."""
        fields: dict = {}
        if isinstance(circuit, Circuit):
            from repro.circuit.bench import write_bench

            fields["bench"] = write_bench(circuit)
            fields["name"] = circuit.name
        elif circuit is not None:
            fields["circuit"] = circuit
        if bench is not None:
            fields["bench"] = bench
        if k is not None:
            fields["k"] = k
        if slack is not None:
            fields["slack"] = slack
        if exact:
            fields["exact"] = True
        if delays is not None:
            fields["delays"] = delays
        if seed:
            fields["seed"] = seed
        if deadline is not None:
            fields["deadline"] = deadline
        return self.request("signoff", on_event=on_event, **fields)
