"""Figures 1-5 bench: the running-example reproductions.

Cheap enough for real benchmark rounds; the asserted facts are the
paper's own numbers (3 systems for 111, |LP(σ)|=6 with one untestable
path, T=5 ⊂ LP(σ) ⊂ FS=8, |LP(σ')|=5 at 100% coverage, optimum sort).
"""

from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)


def test_figure1(benchmark):
    report = benchmark(figure1)
    assert "3 found" in report.title


def test_figure2(benchmark):
    report, paths = benchmark(figure2)
    assert len(paths) == 6
    assert any("b -> g_and -> g_or -> out [1->0]" in l for l in report.lines)


def test_figure3(benchmark):
    report = benchmark(figure3)
    text = report.render()
    assert "|T(C)| = 5" in text and "|FS(C)| = 8" in text


def test_figure4(benchmark):
    report, paths = benchmark(figure4)
    assert len(paths) == 5
    assert any("none" in l for l in report.lines if "robust" in l)


def test_figure5(benchmark):
    report = benchmark(figure5)
    assert "|LP(sigma^pi)| = 5" in report.render()
