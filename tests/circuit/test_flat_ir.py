"""The flat struct-of-arrays IR mirrors the object-graph Circuit exactly."""

import pickle

from hypothesis import given, settings

from repro.circuit.examples import paper_example_circuit
from repro.circuit.flat import K_NOT, K_PI, K_PO, K_SIMPLE, K_WIRE, FlatCircuit
from repro.circuit.gates import GateType, controlling_value, has_controlling_value
from repro.gen.suite import get_circuit
from repro.store.fingerprint import fingerprint

from tests.strategies import small_circuits

_KIND_NAMES = {
    GateType.PI: K_PI,
    GateType.PO: K_PO,
    GateType.BUF: K_WIRE,
    GateType.NOT: K_NOT,
}


def _check_mirrors(circuit):
    flat = circuit.flat
    n = circuit.num_gates
    assert flat.num_gates == n
    assert flat.num_leads == circuit.num_leads
    assert tuple(flat.inputs) == circuit.inputs
    assert tuple(flat.outputs) == circuit.outputs
    assert tuple(flat.topo) == circuit.topo_order
    for g in range(n):
        t = circuit.gate_type(g)
        assert flat.type_code[g] == t.value
        if has_controlling_value(t):
            assert flat.kind[g] == K_SIMPLE
            assert flat.ctrl[g] == controlling_value(t)
            assert flat.nc[g] == 1 - flat.ctrl[g]
        else:
            assert flat.kind[g] == _KIND_NAMES[t]
        assert flat.fanin_of(g) == circuit.fanin(g)
        assert flat.fanin_count(g) == len(circuit.fanin(g))
        expected_mask = 0
        for src in circuit.fanin(g):
            expected_mask |= 1 << src
        assert flat.fanin_mask[g] == expected_mask
        assert flat.fanout_of(g) == tuple(
            (circuit.lead_index(dst, pin), dst)
            for dst, pin in circuit.fanout(g)
        )
        assert flat.fanout_gates[g] == tuple(
            sorted({dst for dst, _pin in circuit.fanout(g)})
        )
    for lead in range(circuit.num_leads):
        assert flat.lead_src(lead) == circuit.lead_src(lead)
        assert flat.lead_dst[lead] == circuit.lead_dst(lead)
        assert flat.lead_pin[lead] == circuit.lead_pin(lead)
        # the fanin CSR doubles as the lead base table
        dst = flat.lead_dst[lead]
        assert flat.fanin_start[dst] <= lead < flat.fanin_start[dst + 1]
        assert flat.lead_pin[lead] == lead - flat.fanin_start[dst]


class TestFlatMirrorsCircuit:
    def test_paper_example(self):
        _check_mirrors(paper_example_circuit())

    def test_suite_circuit(self):
        _check_mirrors(get_circuit("c17"))

    @settings(max_examples=30, deadline=None)
    @given(circuit=small_circuits())
    def test_random_circuits(self, circuit):
        _check_mirrors(circuit)


class TestFlatCaching:
    def test_flat_is_cached(self):
        circuit = paper_example_circuit()
        assert circuit.flat is circuit.flat

    def test_closures_are_cached(self):
        flat = paper_example_circuit().flat
        assert flat.closures is flat.closures

    def test_build_is_direct_construction(self):
        circuit = paper_example_circuit()
        rebuilt = FlatCircuit(circuit)
        assert tuple(rebuilt.fanin_gates) == tuple(circuit.flat.fanin_gates)


class TestStats:
    def test_histogram_counts_every_gate(self):
        circuit = get_circuit("c17")
        hist = circuit.flat.gate_type_histogram()
        assert sum(hist.values()) == circuit.num_gates
        assert hist["PI"] == len(circuit.inputs)
        assert hist["PO"] == len(circuit.outputs)
        assert hist["NAND"] == 6

    def test_bitset_words(self):
        flat = get_circuit("c17").flat
        assert flat.bitset_words == (flat.num_gates + 63) // 64 == 1

    def test_ir_stats_payload(self):
        flat = paper_example_circuit().flat
        stats = flat.ir_stats()
        assert stats["gates"] == flat.num_gates
        assert stats["leads"] == flat.num_leads
        assert stats["bitset_words"] == flat.bitset_words
        assert stats["build_s"] >= 0


class TestLiteralClosures:
    def test_closure_contains_own_literal(self):
        flat = paper_example_circuit().flat
        clo = flat.closures
        for g in range(flat.num_gates):
            assert clo.lit_ones[2 * g + 1] >> g & 1
            assert clo.lit_zeros[2 * g] >> g & 1

    def test_complements_and_bad_flags(self):
        clo = paper_example_circuit().flat.closures
        for L in range(len(clo.lit_ones)):
            assert clo.lit_no[L] == ~clo.lit_ones[L]
            assert clo.lit_nz[L] == ~clo.lit_zeros[L]
            assert clo.lit_bad[L] == bool(clo.lit_ones[L] & clo.lit_zeros[L])

    def test_wire_forwarding_closed(self):
        # In c17 every lead into a PO propagates the source value; closure
        # of the source literal must include the PO gate on the same side.
        circuit = get_circuit("c17")
        flat = circuit.flat
        clo = flat.closures
        for po in circuit.outputs:
            (src,) = circuit.fanin(po)
            assert clo.lit_ones[2 * src + 1] >> po & 1
            assert clo.lit_zeros[2 * src] >> po & 1


class TestPickling:
    def test_roundtrip_structure_and_fingerprint(self):
        circuit = get_circuit("c17")
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.frozen
        assert clone.name == circuit.name
        assert clone.num_gates == circuit.num_gates
        assert clone.num_leads == circuit.num_leads
        for g in range(circuit.num_gates):
            assert clone.gate_type(g) is circuit.gate_type(g)
            assert clone.gate_name(g) == circuit.gate_name(g)
            assert clone.fanin(g) == circuit.fanin(g)
            assert clone.fanout(g) == circuit.fanout(g)
        assert fingerprint(clone) == fingerprint(circuit)

    def test_payload_excludes_derived_state(self):
        circuit = get_circuit("c17")
        circuit.flat.closures  # force the heavy derived state into being
        state = circuit.__getstate__()
        assert set(state) == {"name", "types", "names", "fanin", "frozen"}
        # derived structures are rebuilt, not shipped
        blob = pickle.dumps(circuit)
        assert len(blob) < 4096

    def test_unfrozen_roundtrip(self):
        from repro.circuit.netlist import Circuit

        c = Circuit("wip")
        c.add_gate(GateType.PI, "a")
        clone = pickle.loads(pickle.dumps(c))
        assert not clone.frozen
        assert clone.gate_name(0) == "a"

    @settings(max_examples=20, deadline=None)
    @given(circuit=small_circuits())
    def test_random_roundtrip_classifies_identically(self, circuit):
        from repro.classify.conditions import Criterion
        from repro.classify.engine import classify

        clone = pickle.loads(pickle.dumps(circuit))
        a = classify(circuit, Criterion.FS)
        b = classify(clone, Criterion.FS)
        assert (a.accepted, a.edges_visited) == (b.accepted, b.edges_visited)
