"""Ablation: circuit structure vs RD fraction and classifier cost.

Two sweeps called out in DESIGN.md:

* XOR realisation (SOP vs 4-NAND) on equal-width parity trees — the
  shared-node NAND form is what produces functionally unsensitizable
  paths (the c499/c1355 behaviour);
* prime-segment pruning — classifying an RD-heavy circuit must visit far
  fewer segments than its total path count (the reason the paper's
  approach scales).
"""

import pytest

from repro.classify.conditions import Criterion
from repro.classify.engine import classify
from repro.gen.parity import parity_tree
from repro.paths.count import count_paths


@pytest.mark.parametrize("style", ["sop", "nand"])
def test_xor_style_classification(benchmark, style):
    circuit = parity_tree(24, style=style)
    result = benchmark.pedantic(
        classify, args=(circuit, Criterion.FS), rounds=1, iterations=1
    )
    assert result.total_logical == count_paths(circuit).total_logical


def test_nand_xor_creates_unsensitizable_paths(benchmark):
    sop, nand = benchmark.pedantic(
        lambda: (
            classify(parity_tree(24, style="sop"), Criterion.FS),
            classify(parity_tree(24, style="nand"), Criterion.FS),
        ),
        rounds=1, iterations=1,
    )
    assert sop.rd_percent == 0.0
    assert nand.rd_percent > 50.0


def test_prime_segment_pruning_beats_enumeration(benchmark):
    """On the NAND parity tree, the classifier accepts only a fraction
    of all logical paths; the rejected ones are pruned as segments, so
    the visit count stays near the accepted count, not the total."""
    circuit = parity_tree(32, style="nand")
    result = benchmark.pedantic(
        classify, args=(circuit, Criterion.FS), rounds=1, iterations=1
    )
    assert result.accepted < result.total_logical / 2
