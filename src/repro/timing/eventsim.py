"""Event-driven gate-level timing simulation (transport delay model).

Used to observe settle times of implementations ``C_m``:

* start from an arbitrary initial net state (Theorem 1 quantifies over
  the circuitry outside the stabilizing system, which an arbitrary
  initial state models conservatively);
* apply an input vector at t = 0 (every PI assumes its new value
  instantly);
* propagate events — a gate re-evaluates whenever an input changes and
  schedules its (possibly new) output value after its rise/fall delay.

The simulator answers the question "when did the PO last change?",
which Theorem 1 upper-bounds by the maximum logical path delay of the
chosen stabilizing system.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Mapping, Sequence

from repro.circuit.gates import GateType, evaluate_gate
from repro.circuit.netlist import Circuit
from repro.logic.simulate import simulate
from repro.timing.delays import DelayAssignment


class EventSimulator:
    """One-shot event-driven simulation of one input application."""

    def __init__(self, circuit: Circuit, delays: DelayAssignment) -> None:
        if delays.circuit is not circuit:
            raise ValueError("delay assignment belongs to a different circuit")
        self.circuit = circuit
        self.delays = delays

    def run(
        self,
        vector: Sequence[int],
        initial: Sequence[int],
        horizon: float | None = None,
    ) -> dict:
        """Apply ``vector`` at t=0 over ``initial`` net values.

        Returns ``{gate: time of last value change}`` (gates that never
        change are absent).  ``horizon`` aborts runaway oscillation (a
        combinational circuit with non-zero delays cannot oscillate, but
        zero-delay loops in future gate libraries would).
        """
        circuit = self.circuit
        if len(initial) != circuit.num_gates:
            raise ValueError("initial state must cover every gate")
        current = list(initial)
        last_change: dict = {}
        counter = itertools.count()
        queue: list = []

        def schedule_eval(t: float, gate: int) -> None:
            """Schedule a (re-)evaluation of ``gate``'s output for the
            value its inputs currently imply; the gate is re-evaluated
            again at pop time, so stale events are harmless."""
            new_out = evaluate_gate(
                circuit.gate_type(gate),
                [current[s] for s in circuit.fanin(gate)],
            )
            if new_out != current[gate]:
                heapq.heappush(
                    queue,
                    (t + self.delays.delay(gate, new_out), next(counter), gate),
                )

        # PIs assume the vector instantly at t = 0.
        for pi, value in zip(circuit.inputs, vector):
            if current[pi] != value:
                current[pi] = value
                last_change[pi] = 0.0
        # Every gate whose output disagrees with its (possibly arbitrary)
        # inputs corrects itself after its own delay — real hardware
        # evaluates continuously, not only on input edges.
        for gate in range(circuit.num_gates):
            if circuit.gate_type(gate) is not GateType.PI:
                schedule_eval(0.0, gate)
        while queue:
            t, _tick, gate = heapq.heappop(queue)
            if horizon is not None and t > horizon:
                raise RuntimeError(f"simulation exceeded horizon {horizon}")
            value = evaluate_gate(
                circuit.gate_type(gate),
                [current[s] for s in circuit.fanin(gate)],
            )
            if current[gate] == value:
                continue
            current[gate] = value
            last_change[gate] = t
            for dst, _pin in circuit.fanout(gate):
                schedule_eval(t, dst)
        # Sanity: every net must have settled on its stable value.
        stable = simulate(circuit, vector)
        for gate in range(circuit.num_gates):
            if current[gate] != stable[gate]:
                raise RuntimeError(
                    f"net {circuit.gate_name(gate)} settled on a wrong value"
                )
        return last_change


def settle_time(
    circuit: Circuit,
    delays: DelayAssignment,
    vector: Sequence[int],
    initial: Sequence[int] | None = None,
    po: int | None = None,
    seed: int = 0,
) -> float:
    """Time of the last change of ``po`` (or the latest PO) after
    applying ``vector`` over ``initial`` (random if omitted)."""
    if initial is None:
        rng = random.Random(seed)
        initial = [rng.randint(0, 1) for _ in range(circuit.num_gates)]
        # Make the initial state internally consistent for non-PI gates?
        # Deliberately not: Theorem 1 permits arbitrary values outside
        # the stabilizing system, and an inconsistent start only makes
        # the bound harder to meet.
    changes = EventSimulator(circuit, delays).run(vector, initial)
    pos = [po] if po is not None else list(circuit.outputs)
    return max((changes.get(p, 0.0) for p in pos), default=0.0)


def two_pattern_settle(
    circuit: Circuit,
    delays: DelayAssignment,
    v1: Sequence[int],
    v2: Sequence[int],
    po: int | None = None,
) -> float:
    """Settle time of ``v2`` applied over the stable state of ``v1`` —
    the delay a two-pattern delay test measures at the PO."""
    initial = simulate(circuit, v1)
    return settle_time(circuit, delays, v2, initial=initial, po=po)


def stable_state(circuit: Circuit, vector: Sequence[int]) -> list:
    """The fully stabilized net values under ``vector`` (re-export of
    :func:`repro.logic.simulate.simulate` for timing call sites)."""
    return simulate(circuit, vector)


def random_initial_state(circuit: Circuit, seed: int = 0) -> list:
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(circuit.num_gates)]


def apply_gate_types(circuit: Circuit) -> Mapping[int, GateType]:
    """gate id -> gate type view (convenience for reporting)."""
    return {g: circuit.gate_type(g) for g in range(circuit.num_gates)}
