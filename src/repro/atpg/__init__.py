"""From-scratch SAT + stuck-at ATPG substrate.

The baseline of Lam et al. [1] identifies RD-paths through *redundant
stuck-at faults* in the leaf-dag.  This package provides the machinery:
a CNF container, a CDCL-style SAT solver, Tseitin circuit encoding, and
stuck-at test generation / redundancy checking via good-vs-faulty miters.
"""

from repro.atpg.cnf import CNF
from repro.atpg.sat import Solver, SolveResult
from repro.atpg.tseitin import tseitin_encode, CircuitEncoding
from repro.atpg.stuckat import (
    StuckAtFault,
    generate_test,
    is_redundant,
    simulate_with_fault,
)
from repro.atpg.podem import PodemResult, generate_test_podem, podem
from repro.atpg.collapse import all_lead_faults, collapse_faults
from repro.atpg.equiv import EquivalenceResult, check_equivalence
from repro.atpg.flow import AtpgResult, run_atpg
from repro.atpg.redundancy_removal import (
    RemovalResult,
    is_irredundant,
    remove_redundancies,
)

__all__ = [
    "PodemResult",
    "generate_test_podem",
    "podem",
    "all_lead_faults",
    "collapse_faults",
    "EquivalenceResult",
    "check_equivalence",
    "AtpgResult",
    "run_atpg",
    "RemovalResult",
    "is_irredundant",
    "remove_redundancies",
    "CNF",
    "Solver",
    "SolveResult",
    "tseitin_encode",
    "CircuitEncoding",
    "StuckAtFault",
    "generate_test",
    "is_redundant",
    "simulate_with_fault",
]
