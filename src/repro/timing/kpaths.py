"""Lazy enumeration of logical paths in decreasing delay order.

Best-first search over the (gate, direction) DAG with an exact
remaining-delay bound (the suffix analogue of STA), so paths pop off the
frontier strictly in order of total delay.  This makes the Section-VI
selection strategies usable on circuits whose *total* path count defies
enumeration: only the slow prefix of the path population is ever
materialised — asking for the 10 slowest logical paths of a 16×16
multiplier (≈10²³ paths) touches a few thousand frontier states.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.circuit.gates import GateType, is_inverting
from repro.circuit.netlist import Circuit
from repro.paths.path import LogicalPath, PhysicalPath
from repro.timing.delays import DelayAssignment


def _suffix_best(circuit: Circuit, delays: DelayAssignment) -> list:
    """``best[g][dir]``: max additional delay from gate ``g``'s output
    (carrying a transition with final value ``dir``) to any PO."""
    best = [[float("-inf"), float("-inf")] for _ in range(circuit.num_gates)]
    for gid in reversed(circuit.topo_order):
        if circuit.gate_type(gid) is GateType.PO:
            best[gid][0] = best[gid][1] = 0.0
            continue
        for direction in (0, 1):
            acc = float("-inf")
            for dst, _pin in circuit.fanout(gid):
                downstream = (
                    1 - direction
                    if is_inverting(circuit.gate_type(dst))
                    else direction
                )
                tail = best[dst][downstream]
                if tail == float("-inf"):
                    continue
                acc = max(acc, delays.delay(dst, downstream) + tail)
            best[gid][direction] = acc
    return best


def iter_paths_by_delay(
    circuit: Circuit,
    delays: DelayAssignment,
    max_states: int = 10_000_000,
) -> Iterator[tuple]:
    """Yield ``(delay, LogicalPath)`` in non-increasing delay order.

    ``max_states`` bounds total frontier expansions (each popped state
    extends one partial path by one gate); asking for many paths of a
    huge circuit exhausts it and raises RuntimeError.
    """
    if delays.circuit is not circuit:
        raise ValueError("delay assignment belongs to a different circuit")
    best = _suffix_best(circuit, delays)
    # Lexicographic tie-breaking: among equal-delay partial paths, pop
    # the one with the lexicographically smallest lead tuple (then the
    # smaller start value / gate id).  A child's tuple extends its
    # parent's, so this still drills depth-first down the smallest
    # branch — FIFO would breadth-first expand entire equal-delay path
    # classes (millions of states in a unit-delay multiplier) before
    # completing a single path — while making the yield order of
    # equal-delay paths a pure function of the circuit, independent of
    # heap insertion history.  Signoff tables depend on this.
    heap: list = []
    for pi in circuit.inputs:
        for direction in (0, 1):
            bound = best[pi][direction]
            if bound == float("-inf"):
                continue  # PI drives no PO
            heapq.heappush(
                heap, (-bound, (), direction, pi, direction, 0.0)
            )
    states = 0
    while heap:
        neg_total, leads, start, gate, direction, acc = heapq.heappop(heap)
        states += 1
        if states > max_states:
            raise RuntimeError(f"more than {max_states} frontier states")
        if circuit.gate_type(gate) is GateType.PO:
            yield -neg_total, LogicalPath(PhysicalPath(leads), start)
            continue
        for dst, pin in circuit.fanout(gate):
            downstream = (
                1 - direction
                if is_inverting(circuit.gate_type(dst))
                else direction
            )
            tail = best[dst][downstream]
            if tail == float("-inf"):
                continue
            step = delays.delay(dst, downstream)
            new_acc = acc + step
            heapq.heappush(
                heap,
                (
                    -(new_acc + tail),
                    leads + (circuit.lead_index(dst, pin),),
                    start,
                    dst,
                    downstream,
                    new_acc,
                ),
            )


def k_longest_paths(
    circuit: Circuit,
    delays: DelayAssignment,
    k: int,
    max_states: int = 10_000_000,
) -> list:
    """The ``k`` slowest logical paths as ``(delay, LogicalPath)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    out = []
    for item in iter_paths_by_delay(circuit, delays, max_states=max_states):
        out.append(item)
        if len(out) == k:
            break
    return out


def paths_above_threshold(
    circuit: Circuit,
    delays: DelayAssignment,
    threshold: float,
    max_paths: int = 1_000_000,
    max_states: int = 10_000_000,
) -> Iterator[tuple]:
    """All logical paths with delay ≥ ``threshold``, lazily, slowest
    first — the scalable form of the Section-VI threshold strategy."""
    produced = 0
    for delay, lp in iter_paths_by_delay(circuit, delays, max_states=max_states):
        if delay < threshold:
            return
        produced += 1
        if produced > max_paths:
            raise RuntimeError(f"more than {max_paths} paths above threshold")
        yield delay, lp
