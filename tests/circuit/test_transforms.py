"""Unit tests for structural transforms (leaf-dag, stripping)."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.examples import paper_example_circuit, two_and_tree
from repro.circuit.gates import GateType
from repro.circuit.transforms import (
    LeafDagTooLarge,
    has_internal_fanout,
    strip_unreachable,
    unfold_leaf_dag,
)
from repro.logic.simulate import truth_table
from repro.paths.count import count_paths


class TestStripUnreachable:
    def test_removes_dangling_logic(self):
        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        used = b.and_(a, c, name="used")
        b.and_(a, c, name="dangling")
        b.po(used, "out")
        circuit = b.build()
        stripped = strip_unreachable(circuit)
        assert stripped.num_gates == circuit.num_gates - 1
        names = {stripped.gate_name(g) for g in range(stripped.num_gates)}
        assert "dangling" not in names

    def test_keeps_unused_pis(self):
        b = CircuitBuilder("t")
        a = b.pi("a")
        b.pi("unused")
        b.po(a, "out")
        stripped = strip_unreachable(b.build())
        assert len(stripped.inputs) == 2

    def test_function_preserved(self):
        circuit = paper_example_circuit()
        stripped = strip_unreachable(circuit)
        assert truth_table(stripped) == truth_table(circuit)


class TestLeafDag:
    def test_tree_is_unchanged_in_size(self):
        circuit = two_and_tree()
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        assert dag.circuit.num_gates == circuit.num_gates

    def test_paper_example_already_leaf_dag(self):
        # Only PI c fans out, which is allowed in a leaf-dag.
        circuit = paper_example_circuit()
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        assert dag.circuit.num_gates == circuit.num_gates
        assert truth_table(dag.circuit) == truth_table(circuit)

    def test_internal_fanout_duplicates(self):
        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        shared = b.and_(a, c, name="shared")
        o1 = b.or_(shared, a, name="o1")
        o2 = b.or_(shared, c, name="o2")
        b.po(b.and_(o1, o2, name="root"), "out")
        circuit = b.build()
        assert has_internal_fanout(circuit)
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        assert not has_internal_fanout(dag.circuit)
        assert truth_table(dag.circuit) == truth_table(circuit)

    def test_branch_paths_bijective_with_physical_paths(self):
        circuit = paper_example_circuit()
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        counts = count_paths(circuit)
        assert len(dag.branch_paths) == counts.total_physical
        # Each recorded original path must be a valid PI->PO lead path.
        from repro.paths.path import PhysicalPath

        for leads in dag.branch_paths.values():
            PhysicalPath(leads).validate(circuit)

    def test_leaf_dag_path_count_preserved(self):
        # Unfolding preserves the number of PI->PO paths of the cone.
        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        shared = b.and_(a, c, name="shared")
        o1 = b.or_(shared, a, name="o1")
        o2 = b.or_(shared, c, name="o2")
        b.po(b.and_(o1, o2, name="root"), "out")
        circuit = b.build()
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        assert (
            count_paths(dag.circuit).total_physical
            == count_paths(circuit).total_physical
        )

    def test_gate_budget_enforced(self):
        from repro.gen.parity import parity_tree

        circuit = parity_tree(16)
        with pytest.raises(LeafDagTooLarge):
            unfold_leaf_dag(circuit, circuit.outputs[0], max_gates=10)

    def test_requires_po(self):
        circuit = paper_example_circuit()
        from repro.circuit.netlist import CircuitError

        with pytest.raises(CircuitError):
            unfold_leaf_dag(circuit, circuit.inputs[0])

    def test_origin_maps_to_original_gates(self):
        circuit = paper_example_circuit()
        dag = unfold_leaf_dag(circuit, circuit.outputs[0])
        for copy_gid, orig_gid in dag.origin.items():
            assert (
                dag.circuit.gate_type(copy_gid) == circuit.gate_type(orig_gid)
            )


class TestHasInternalFanout:
    def test_pi_fanout_is_allowed(self):
        circuit = paper_example_circuit()  # c fans out, but c is a PI
        assert not has_internal_fanout(circuit)

    def test_gate_fanout_detected(self):
        b = CircuitBuilder("t")
        a, c = b.pi("a"), b.pi("c")
        g = b.and_(a, c, name="g")
        b.po(b.or_(g, a, name="o1"), "out1")
        b.po(b.or_(g, c, name="o2"), "out2")
        assert has_internal_fanout(b.build())
