"""Sensitization criteria and their per-gate side-input conditions.

All three criteria ask for an input vector ``v`` with ``v(PI(P)) = x``
plus, at each gate ``g`` along the path with on-path input lead ``l``:

===========  ==========================  ===========================
criterion    on-path value at l = non-c  on-path value at l = c
===========  ==========================  ===========================
FS  (Def 4)  all side inputs non-c       (no condition)
NR  (Def 5)  all side inputs non-c       all side inputs non-c
σ^π (Lem 2)  all side inputs non-c       low-order side inputs non-c
===========  ==========================  ===========================

Remark 2 of the paper is visible in the table: dropping the π3 column
entry of SIGMA_PI yields FS.  NR is the most restrictive, giving the
hierarchy ``T(C) ⊂ LP(σ^π) ⊂ FS(C)`` of Lemma 1.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.circuit.gates import has_controlling_value
from repro.circuit.netlist import Circuit

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.sorting.input_sort import InputSort


class Criterion(enum.Enum):
    """Which path set is being (super-)approximated."""

    FS = "functionally-sensitizable"
    NR = "non-robustly-testable"
    SIGMA_PI = "lp-sigma-pi"

    @property
    def needs_sort(self) -> bool:
        return self is Criterion.SIGMA_PI


def required_side_pins(
    criterion: Criterion,
    circuit: Circuit,
    lead: int,
    on_path_is_controlling: bool,
    sort: "InputSort | None",
) -> list[int]:
    """Pins of ``dst(lead)`` that must carry non-controlling stable
    values for the on-path transition entering through ``lead``.

    Only called for simple multi-input gates (NOT/BUF/PO impose no side
    conditions).
    """
    dst = circuit.lead_dst(lead)
    pin = circuit.lead_pin(lead)
    if not on_path_is_controlling:
        # (FU2)/(NR2)/(π2): every side input non-controlling.
        return [p for p in range(len(circuit.fanin(dst))) if p != pin]
    if criterion is Criterion.FS:
        return []
    if criterion is Criterion.NR:
        return [p for p in range(len(circuit.fanin(dst))) if p != pin]
    if criterion is Criterion.SIGMA_PI:
        if sort is None:
            raise ValueError("SIGMA_PI criterion requires an input sort")
        return sort.low_order_side_pins(lead)
    raise ValueError(f"unknown criterion {criterion}")


def packed_side_conditions(
    circuit: Circuit,
    criterion: Criterion,
    sort: "InputSort | None" = None,
) -> tuple[list[int], list[int]]:
    """Word-packed side-input conditions for every lead of ``circuit``.

    Returns ``(all_masks, ctrl_masks)``, two lists indexed by lead: gate
    bitsets (bit ``s`` set iff source gate ``s`` must carry the
    destination gate's non-controlling value) for the two on-path cases of
    the criterion table above — non-controlling on-path value
    (``all_masks``) and controlling on-path value (``ctrl_masks``).

    This is the same information :func:`required_side_pins` yields pin by
    pin, folded into one machine-word-parallel mask per lead (duplicate
    source gates collapse — a gate feeding two side pins must be
    non-controlling either way).  The bitset classification engine builds
    its per-lead condition entries from these masks; the property tests
    pin the two forms to each other.

    Leads into PO/NOT/BUF gates impose no side conditions: both masks 0.
    """
    all_masks = [0] * circuit.num_leads
    ctrl_masks = [0] * circuit.num_leads
    for lead in range(circuit.num_leads):
        dst = circuit.lead_dst(lead)
        gt = circuit.gate_type(dst)
        if not has_controlling_value(gt):
            continue
        fanin = circuit.fanin(dst)
        m = 0
        for p in required_side_pins(criterion, circuit, lead, False, sort):
            m |= 1 << fanin[p]
        all_masks[lead] = m
        m = 0
        for p in required_side_pins(criterion, circuit, lead, True, sort):
            m |= 1 << fanin[p]
        ctrl_masks[lead] = m
    return all_masks, ctrl_masks
