"""Unit tests for the util helpers (timer, tables)."""

import time

import pytest

from repro.util.tables import TextTable
from repro.util.timer import Stopwatch, format_duration


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01

    def test_accumulates_across_restarts(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        first = sw.elapsed
        sw.start()
        sw.stop()
        assert sw.elapsed >= first

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0:00"),
            (59, "0:59"),
            (61, "1:01"),
            (3600, "1:00:00"),
            (3661, "1:01:01"),
            (52178, "14:29:38"),  # the paper's c3540 Heu2 time
        ],
    )
    def test_known_values(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_fractional_seconds_keep_precision(self):
        assert format_duration(2.5).startswith("0:02.5")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row(["a", 1])
        table.add_row(["long-name", 12345])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "long-name" in text

    def test_row_width_check(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_rows_copy(self):
        table = TextTable(["a"])
        table.add_row([1])
        rows = table.rows
        rows[0][0] = "tampered"
        assert table.rows[0][0] == "1"

    def test_str_is_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()
