"""Table III bench: the baseline of [1] vs Heuristic 2.

One full comparison per MCNC-like circuit, one round each (the baseline
is an exponential optimisation — its slowness *is* the result).  The
paper's shape is asserted: the baseline's RD fraction is at least
Heuristic 2's (small positive gap; paper mean 2.05%), and Heuristic 2 is
faster by an order of magnitude or more (paper: 10x-1000x).
"""

import pytest

from repro.experiments.harness import run_table3_row
from repro.gen.suite import table3_suite

from benchmarks.conftest import TABLE3_ROWS

_CIRCUITS = {c.name: c for c in table3_suite()}


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_table3_row(benchmark, name):
    circuit = _CIRCUITS[name]
    row = benchmark.pedantic(
        run_table3_row, args=(circuit,), rounds=1, iterations=1
    )
    TABLE3_ROWS[name] = row
    assert row.quality_gap >= -1e-9, (
        f"{name}: fast approach beat the baseline ({row.quality_gap:+.2f}%)"
    )
    assert row.speedup >= 10.0, (
        f"{name}: expected >=10x speedup, got {row.speedup:.1f}x"
    )
    assert row.baseline_percent > 0.0, f"{name}: empty RD-set"


def test_table3_aggregate_gap(benchmark):
    """The paper reports a mean quality loss of 2.05% for Heuristic 2;
    assert the same order of magnitude (0-10%) and a large mean speedup."""
    rows = benchmark.pedantic(lambda: list(TABLE3_ROWS.values()), rounds=1, iterations=1)
    assert len(rows) == len(_CIRCUITS)
    mean_gap = sum(r.quality_gap for r in rows) / len(rows)
    assert 0.0 <= mean_gap <= 10.0
    mean_speedup = sum(r.speedup for r in rows) / len(rows)
    assert mean_speedup >= 50.0
