"""Packed bitset side conditions ≡ ``required_side_pins``, pin by pin.

The bitset engine never calls :func:`required_side_pins`; it builds its
per-lead condition entries from :func:`packed_side_conditions` masks.
These properties pin the two formulations to each other for every
criterion, so a drift in either one fails loudly.
"""

import pytest
from hypothesis import given, settings

from repro.circuit.examples import paper_example_circuit
from repro.circuit.gates import has_controlling_value
from repro.classify.conditions import (
    Criterion,
    packed_side_conditions,
    required_side_pins,
)
from repro.sorting.input_sort import InputSort

from tests.strategies import small_circuits


def _expected_mask(circuit, criterion, lead, on_path_is_controlling, sort):
    dst = circuit.lead_dst(lead)
    if not has_controlling_value(circuit.gate_type(dst)):
        return 0
    fanin = circuit.fanin(dst)
    mask = 0
    for p in required_side_pins(
        criterion, circuit, lead, on_path_is_controlling, sort
    ):
        mask |= 1 << fanin[p]
    return mask


def _check_circuit(circuit, criterion):
    sort = InputSort.pin_order(circuit) if criterion.needs_sort else None
    all_masks, ctrl_masks = packed_side_conditions(circuit, criterion, sort)
    assert len(all_masks) == len(ctrl_masks) == circuit.num_leads
    for lead in range(circuit.num_leads):
        assert all_masks[lead] == _expected_mask(
            circuit, criterion, lead, False, sort
        )
        assert ctrl_masks[lead] == _expected_mask(
            circuit, criterion, lead, True, sort
        )


class TestPackedEquivalence:
    @pytest.mark.parametrize("criterion", list(Criterion))
    def test_paper_example(self, criterion):
        _check_circuit(paper_example_circuit(), criterion)

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_random_fs(self, circuit):
        _check_circuit(circuit, Criterion.FS)

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_random_nr(self, circuit):
        _check_circuit(circuit, Criterion.NR)

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_random_sigma_pi(self, circuit):
        _check_circuit(circuit, Criterion.SIGMA_PI)

    @settings(max_examples=15, deadline=None)
    @given(circuit=small_circuits())
    def test_sigma_pi_inverted_sort(self, circuit):
        sort = InputSort.pin_order(circuit).inverted()
        all_masks, ctrl_masks = packed_side_conditions(
            circuit, Criterion.SIGMA_PI, sort
        )
        for lead in range(circuit.num_leads):
            assert all_masks[lead] == _expected_mask(
                circuit, Criterion.SIGMA_PI, lead, False, sort
            )
            assert ctrl_masks[lead] == _expected_mask(
                circuit, Criterion.SIGMA_PI, lead, True, sort
            )


class TestCriterionStructure:
    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_fs_ctrl_masks_empty(self, circuit):
        # FS imposes nothing when the on-path value is controlling.
        _all, ctrl_masks = packed_side_conditions(circuit, Criterion.FS)
        assert all(m == 0 for m in ctrl_masks)

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_nr_both_cases_equal(self, circuit):
        # NR demands all side inputs non-controlling in both cases.
        all_masks, ctrl_masks = packed_side_conditions(circuit, Criterion.NR)
        assert all_masks == ctrl_masks

    @settings(max_examples=25, deadline=None)
    @given(circuit=small_circuits())
    def test_hierarchy_fs_sigma_nr(self, circuit):
        # Lemma 1 hierarchy at the mask level: FS ⊆ σ^π ⊆ NR requirements
        # (a superset of required side inputs = a more restrictive
        # criterion), and the non-controlling case is criterion-blind.
        sort = InputSort.pin_order(circuit)
        fs_all, fs_ctrl = packed_side_conditions(circuit, Criterion.FS)
        sp_all, sp_ctrl = packed_side_conditions(
            circuit, Criterion.SIGMA_PI, sort
        )
        nr_all, nr_ctrl = packed_side_conditions(circuit, Criterion.NR)
        assert fs_all == sp_all == nr_all
        for lead in range(circuit.num_leads):
            assert fs_ctrl[lead] & sp_ctrl[lead] == fs_ctrl[lead]
            assert sp_ctrl[lead] & nr_ctrl[lead] == sp_ctrl[lead]

    def test_sigma_pi_requires_sort(self):
        circuit = paper_example_circuit()
        with pytest.raises(ValueError):
            packed_side_conditions(circuit, Criterion.SIGMA_PI, None)
