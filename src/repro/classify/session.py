"""Analysis sessions: shared per-circuit state for classification runs.

Every paper pipeline runs *several* classification passes over the same
circuit — Heuristic 2 alone pays an FS pass, an NR pass and a final
SIGMA_PI pass, and a full Table-I row adds the Heu1 and inverted-sort
passes on top.  A :class:`CircuitSession` makes the state those passes
share a first-class, reusable artifact instead of per-call scratch:

* the exact path counts (:func:`~repro.paths.count.count_paths`) are
  computed once per circuit;
* one :class:`~repro.logic.implication.ImplicationEngine` is built per
  circuit and reused across passes (its trail is provably empty between
  runs — the enumeration core restores it even on exceptions);
* the static per-lead condition tables are cached per
  ``(criterion, sort)`` — the inverted-Heu2 control pass, for example,
  shares nothing with the forward pass, but repeated passes with the
  same sort (re-runs, benches, coverage studies) hit the cache.

Sessions are deliberately cheap to create (all caches are lazy), purely
per-process (they are *not* sent across the
:mod:`~repro.experiments.harness` process pool — each worker builds its
own), and observable: :attr:`CircuitSession.stats` counts cache hits and
builds so tests can assert "exactly one ``count_paths`` per circuit".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.engine import _run, _Tables
from repro.classify.results import ClassificationResult
from repro.errors import ClassifyError
from repro.logic.implication import ImplicationEngine
from repro.paths.count import PathCounts, count_paths

if TYPE_CHECKING:  # annotation-only; avoids a classify <-> sorting cycle
    from repro.paths.path import LogicalPath
    from repro.sorting.heuristics import Heuristic2Analysis
    from repro.sorting.input_sort import InputSort


@dataclass
class SessionStats:
    """Cache observability for one :class:`CircuitSession`."""

    count_paths_calls: int = 0
    engines_built: int = 0
    tables_built: int = 0
    tables_reused: int = 0
    classify_passes: int = 0
    budget_aborts: int = 0

    @property
    def tables_hit_rate(self) -> float:
        total = self.tables_built + self.tables_reused
        if not total:
            return 0.0
        return self.tables_reused / total


@dataclass
class CircuitSession:
    """Lazily-cached analysis state for one frozen circuit.

    Usage::

        session = CircuitSession(circuit)
        fs = session.classify(Criterion.FS)
        analysis = session.heuristic2_analysis()
        final = session.classify(Criterion.SIGMA_PI, sort=analysis.sort)
        session.counts.total_logical   # computed once, shared by all

    All classification entry points (:func:`repro.classify.classify`,
    the sorting heuristics, the experiment harness) accept a session and
    route through these caches.
    """

    circuit: Circuit
    stats: SessionStats = field(default_factory=SessionStats)
    _counts: PathCounts | None = field(default=None, repr=False)
    _engine: ImplicationEngine | None = field(default=None, repr=False)
    _tables: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.circuit._require_frozen()  # noqa: SLF001 - deliberate check

    # -- cached artifacts ----------------------------------------------
    @property
    def counts(self) -> PathCounts:
        """Exact path counts, computed at most once per session."""
        if self._counts is None:
            self.stats.count_paths_calls += 1
            self._counts = count_paths(self.circuit)
        return self._counts

    @property
    def engine(self) -> ImplicationEngine:
        """The shared implication engine (trail empty between passes)."""
        if self._engine is None:
            self.stats.engines_built += 1
            self._engine = ImplicationEngine(self.circuit)
        return self._engine

    def tables(
        self, criterion: Criterion, sort: "InputSort | None" = None
    ) -> _Tables:
        """Per-lead condition tables, cached by ``(criterion, π ranks)``."""
        key = (criterion, None if sort is None else sort.ranks)
        cached = self._tables.get(key)
        if cached is None:
            self.stats.tables_built += 1
            cached = self._tables[key] = _Tables(self.circuit, criterion, sort)
        else:
            self.stats.tables_reused += 1
        return cached

    # -- classification ------------------------------------------------
    def classify(
        self,
        criterion: Criterion,
        sort: "InputSort | None" = None,
        collect_lead_counts: bool = False,
        max_accepted: int | None = None,
        on_path: "Callable[[LogicalPath], None] | None" = None,
    ) -> ClassificationResult:
        """One classification pass through the session caches.

        Same contract as :func:`repro.classify.classify`; the tables,
        implication engine and path counts come from (and warm) this
        session.  A ``max_accepted`` overflow raises
        :class:`~repro.errors.ClassifyError` (counted in
        :attr:`SessionStats.budget_aborts`); the session stays usable —
        the engine trail is restored even on abort.
        """
        self.stats.classify_passes += 1
        tables = self.tables(criterion, sort)
        engine = self.engine
        engine.reset()  # defensive: a prior pass may have been aborted
        try:
            return _run(
                self.circuit,
                criterion,
                tables,
                engine,
                self.counts,
                collect_lead_counts,
                max_accepted,
                on_path,
            )
        except ClassifyError:
            self.stats.budget_aborts += 1
            raise

    # -- sorting heuristics (convenience, session-cached) --------------
    def heuristic1_sort(self) -> "InputSort":
        """Heuristic 1 from the cached path counts (no extra counting)."""
        from repro.sorting.heuristics import heuristic1_sort

        return heuristic1_sort(self.circuit, counts=self.counts)

    def heuristic2_analysis(
        self, max_accepted: int | None = None
    ) -> "Heuristic2Analysis":
        """Algorithm 3 with both superset passes through this session."""
        from repro.sorting.heuristics import heuristic2_analysis

        return heuristic2_analysis(
            self.circuit, max_accepted=max_accepted, session=self
        )

    def heuristic2_sort(self, max_accepted: int | None = None) -> "InputSort":
        return self.heuristic2_analysis(max_accepted=max_accepted).sort
