"""Full-circuit logic simulation (binary and ternary)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.circuit.gates import GateType, evaluate_gate
from repro.circuit.netlist import Circuit
from repro.logic.values import X, ternary_gate_eval


def simulate(circuit: Circuit, vector: Sequence[int]) -> list[int]:
    """Simulate a fully-specified input ``vector`` (one 0/1 per PI, in
    ``circuit.inputs`` order) and return the value of every gate output."""
    if len(vector) != len(circuit.inputs):
        raise ValueError(
            f"vector has {len(vector)} bits, circuit has {len(circuit.inputs)} PIs"
        )
    values = [0] * circuit.num_gates
    pi_value = dict(zip(circuit.inputs, vector))
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            values[gid] = pi_value[gid]
        else:
            values[gid] = evaluate_gate(
                gtype, [values[s] for s in circuit.fanin(gid)]
            )
    return values


def simulate_ternary(
    circuit: Circuit, assignment: Mapping[int, int]
) -> list[int]:
    """Simulate a partial PI ``assignment`` (gate id -> 0/1); unassigned
    PIs are ``X``.  Returns ternary values for every gate output."""
    values = [X] * circuit.num_gates
    for gid in circuit.topo_order:
        gtype = circuit.gate_type(gid)
        if gtype is GateType.PI:
            values[gid] = assignment.get(gid, X)
        else:
            values[gid] = ternary_gate_eval(
                gtype, [values[s] for s in circuit.fanin(gid)]
            )
    return values


def output_values(circuit: Circuit, vector: Sequence[int]) -> tuple[int, ...]:
    """The PO values of a full simulation of ``vector``."""
    values = simulate(circuit, vector)
    return tuple(values[po] for po in circuit.outputs)


def truth_table(circuit: Circuit) -> list[tuple[int, ...]]:
    """Exhaustive truth table (PO tuples indexed by input vector as an
    integer with ``circuit.inputs[0]`` as the most significant bit)."""
    n = len(circuit.inputs)
    if n > 20:
        raise ValueError("truth_table is exponential; circuit has too many PIs")
    table = []
    for code in range(1 << n):
        vector = [(code >> (n - 1 - i)) & 1 for i in range(n)]
        table.append(output_values(circuit, vector))
    return table


def all_vectors(n: int) -> Iterable[tuple[int, ...]]:
    """Iterate all input vectors of width ``n`` (MSB-first order)."""
    for code in range(1 << n):
        yield tuple((code >> (n - 1 - i)) & 1 for i in range(n))
