"""Unit tests for the .pla parser and two-level synthesis."""

import pytest

from repro.circuit.pla import PlaParseError, TwoLevelCover, parse_pla, write_pla
from repro.logic.simulate import all_vectors, output_values

SAMPLE = """
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 11
--1 01
.e
"""


class TestParse:
    def test_structure(self):
        cover = parse_pla(SAMPLE)
        assert cover.num_inputs == 3
        assert cover.num_outputs == 2
        assert cover.input_names == ["a", "b", "c"]
        assert len(cover.cubes) == 3

    def test_missing_directives(self):
        with pytest.raises(PlaParseError):
            parse_pla("1-0 1\n")

    def test_bad_cube_width(self):
        with pytest.raises(PlaParseError):
            parse_pla(".i 3\n.o 1\n1- 1\n")

    def test_bad_literal(self):
        with pytest.raises(PlaParseError):
            parse_pla(".i 2\n.o 1\n1z 1\n")

    def test_write_parse_round_trip(self):
        cover = parse_pla(SAMPLE)
        again = parse_pla(write_pla(cover))
        assert again.cubes == cover.cubes
        assert again.input_names == cover.input_names


class TestEvaluate:
    def test_cover_semantics(self):
        cover = parse_pla(SAMPLE)
        # f = a!c + !a b c ; g = !a b c + c
        for va, vb, vc in all_vectors(3):
            f = (va and not vc) or ((not va) and vb and vc)
            g = ((not va) and vb and vc) or vc
            assert cover.evaluate((va, vb, vc)) == (int(f), int(g))

    def test_width_check(self):
        cover = parse_pla(SAMPLE)
        with pytest.raises(ValueError):
            cover.evaluate((0, 1))


class TestToCircuit:
    def test_circuit_matches_cover(self):
        cover = parse_pla(SAMPLE)
        circuit = cover.to_circuit()
        for vector in all_vectors(3):
            assert output_values(circuit, vector) == cover.evaluate(vector)

    def test_shared_terms_fan_out(self):
        cover = parse_pla(SAMPLE)
        circuit = cover.to_circuit()
        # The cube 011 drives both outputs: its AND term must fan out.
        term = circuit.gate_by_name("t1")
        assert len(circuit.fanout(term)) == 2

    def test_empty_onset_rejected(self):
        cover = TwoLevelCover(num_inputs=2, num_outputs=2)
        cover.add_cube("1-", "10")
        with pytest.raises(PlaParseError):
            cover.to_circuit()

    def test_universal_cube_rejected(self):
        cover = TwoLevelCover(num_inputs=2, num_outputs=1)
        cover.add_cube("--", "1")
        with pytest.raises(PlaParseError):
            cover.to_circuit()

    def test_single_literal_cube(self):
        cover = TwoLevelCover(num_inputs=2, num_outputs=1)
        cover.add_cube("1-", "1")
        cover.add_cube("-1", "1")
        circuit = cover.to_circuit()
        for va, vb in all_vectors(2):
            assert output_values(circuit, (va, vb)) == (va | vb,)
