"""Unit tests for non-robust test quality assessment."""

import pytest

from repro.delaytest.quality import (
    assess_pair,
    best_effort_test,
    invalidating_inputs,
)
from repro.delaytest.simulator import sensitized_paths
from repro.delaytest.testability import is_robustly_testable, robust_test
from repro.paths.enumerate import enumerate_logical_paths


def path_named(circuit, description):
    for lp in enumerate_logical_paths(circuit):
        if lp.describe(circuit) == description:
            return lp
    raise AssertionError(description)


class TestInvalidatingInputs:
    def test_robust_pair_has_none(self, small_circuits):
        """A SAT-generated robust pair never has invalidating inputs —
        the quality checker and the generator implement the same rules."""
        for circuit in small_circuits:
            for lp in enumerate_logical_paths(circuit):
                pair = robust_test(circuit, lp)
                if pair is None:
                    continue
                assert invalidating_inputs(circuit, lp, *pair) == (), (
                    f"{circuit.name}: {lp.describe(circuit)}"
                )

    def test_hazard_detected_on_example(self, example_circuit):
        """For a->OR rising with c toggling, the OR's side inputs are
        not steady: the pair is only non-robust."""
        lp = path_named(example_circuit, "a -> g_or -> out [0->1]")
        v1 = (0, 0, 1)  # c=1 initially: g_and/c sides not steady-0
        v2 = (1, 0, 0)
        hazards = invalidating_inputs(example_circuit, lp, v1, v2)
        names = {example_circuit.gate_name(g) for g in hazards}
        assert "c" in names

    def test_consistency_with_simulator(self, small_circuits):
        """Zero invalidating inputs on a sensitizing pair implies the
        simulator classifies the pair as robust for that path."""
        from repro.logic.simulate import all_vectors

        for circuit in small_circuits:
            n = len(circuit.inputs)
            for v1 in all_vectors(n):
                for v2 in all_vectors(n):
                    cov = sensitized_paths(circuit, v1, v2)
                    for lp in cov.nonrobust:
                        quality = assess_pair(circuit, lp, v1, v2)
                        if quality.is_robust:
                            assert lp in cov.robust, (
                                f"{circuit.name}: {lp.describe(circuit)} "
                                f"{v1}->{v2}"
                            )


class TestBestEffort:
    def test_prefers_robust(self, example_circuit):
        lp = path_named(example_circuit, "a -> g_or -> out [0->1]")
        quality = best_effort_test(example_circuit, lp)
        assert quality.is_robust
        assert quality.classification == "robust"

    def test_nonrobust_fallback_reports_hazards(self):
        """out = AND(a, XOR(a, c)): the rising a-path through the XOR's
        inverted branch cannot keep its to-controlling side inputs steady
        (a itself feeds them) — non-robustly testable only, with the
        hazard reported."""
        from repro.circuit.builder import CircuitBuilder

        b = CircuitBuilder("nr_gap")
        a, c = b.pi("a"), b.pi("c")
        x = b.xor(a, c, name="x")
        b.po(b.and_(a, x, name="g"), "out")
        circuit = b.build()
        target = path_named(
            circuit, "a -> x_na -> x_t1 -> x -> g -> out [0->1]"
        )
        assert not is_robustly_testable(circuit, target)
        quality = best_effort_test(circuit, target)
        assert quality is not None
        assert not quality.is_robust
        # The final AND's side input is a itself, which must transition
        # with the launch — the unavoidable invalidating input.
        names = {circuit.gate_name(g) for g in quality.invalidating}
        assert "a" in names

    def test_untestable_returns_none(self, example_circuit):
        lp = path_named(
            example_circuit, "b -> g_and -> g_or -> out [1->0]"
        )
        assert best_effort_test(example_circuit, lp) is None

    def test_every_path_classified(self, small_circuits):
        for circuit in small_circuits:
            for lp in enumerate_logical_paths(circuit):
                quality = best_effort_test(circuit, lp)
                if quality is None:
                    continue
                assert quality.classification in ("robust", "non-robust")
                assert quality.path == lp
