"""Flat struct-of-arrays circuit IR.

:class:`repro.circuit.netlist.Circuit` stores the netlist as an object
graph — per-gate tuples, :class:`~repro.circuit.netlist.Lead` NamedTuples,
dict lookups.  That representation is convenient to build and inspect but
slow to traverse: the classification engine walks millions of edges and the
fingerprint/path-count layers re-derive the same adjacency over and over.

:class:`FlatCircuit` is the shared traversal form.  It is built once per
circuit (``circuit.flat``, cached) and holds nothing but parallel integer
arrays and word-wide bitmasks:

``type_code[g]``
    the :class:`~repro.circuit.gates.GateType` value of gate ``g`` (the
    *true* gate type — fingerprinting needs NAND vs AND, not just the
    engine's coarser kind).
``kind[g]``
    the engine kind (:data:`K_PO`/:data:`K_WIRE`/:data:`K_NOT`/
    :data:`K_SIMPLE`/:data:`K_PI`) plus ``ctrl``/``nc``/``out_ctrl``/
    ``out_nc`` logic tables for simple gates.
``fanin_start``/``fanin_gates``
    CSR fanin adjacency.  Because lead indices are assigned grouped by
    destination gate and ordered by pin, ``fanin_start`` doubles as the
    lead base table: lead ``l`` feeds pin ``l - fanin_start[lead_dst[l]]``
    of ``lead_dst[l]`` from source ``fanin_gates[l]``.
``fanout_start``/``fanout_dst``/``fanout_lead``
    CSR fanout adjacency in ``Circuit.fanout`` order (ascending
    destination, then pin) — DFS enumeration order depends on it.
``fanin_mask[g]`` / ``fanout_gates[g]``
    per-gate fanin bitset (bit ``s`` set iff gate ``s`` feeds ``g``) and
    the deduplicated, sorted fanout gate tuple.

Gate ids are also bit positions: a set of gates is a Python ``int`` with
bit ``g`` set, so set algebra over ``num_gates`` gates costs
``ceil(num_gates / 64)`` machine words per operation.  On top of that the
lazy :attr:`FlatCircuit.closures` precomputes, for every *literal*
``L = 2 * gate + value``, the transitive closure of the unconditional
implication rules as a pair of bitmasks — see :class:`LiteralClosures`.
"""

from __future__ import annotations

import time
from array import array
from typing import TYPE_CHECKING

from repro.circuit.gates import GateType, controlling_value
from repro.logic.values import controlled_output, uncontrolled_output

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.netlist import Circuit

__all__ = [
    "FlatCircuit",
    "LiteralClosures",
    "K_PO",
    "K_WIRE",
    "K_NOT",
    "K_SIMPLE",
    "K_PI",
]

#: Engine gate kinds.  A *wire* (BUF or PI) forwards its value, NOT inverts
#: it, *simple* gates have a controlling value, POs accept paths.
K_PO, K_WIRE, K_NOT, K_SIMPLE, K_PI = 0, 1, 2, 3, 4

_KIND_OF_TYPE = {
    GateType.PI: K_PI,
    GateType.PO: K_PO,
    GateType.BUF: K_WIRE,
    GateType.NOT: K_NOT,
    GateType.AND: K_SIMPLE,
    GateType.OR: K_SIMPLE,
    GateType.NAND: K_SIMPLE,
    GateType.NOR: K_SIMPLE,
}


class LiteralClosures:
    """Static implication closures over literals ``L = 2 * gate + value``.

    ``lit_ones[L]`` / ``lit_zeros[L]`` are the gate bitmasks forced to 1 /
    0 once literal ``L`` holds, under the *unconditional* implication rules
    of the paper's Algorithm 2 (wire/NOT propagation both directions,
    controlling input forces the output, non-controlled output forces all
    inputs non-controlling).  They include ``L`` itself and are computed by
    one Tarjan SCC pass over the literal implication graph, so cyclic
    (reconvergent) rule chains collapse to a shared closure.

    The *conditional* rules — "last free input of a controlled gate must be
    controlling" and "all inputs non-controlling force the output" — cannot
    be closed statically; they are re-checked at runtime via a candidate
    worklist seeded from ``c1``/``c0``:

    ``c1[g]`` / ``c0[g]``
        bitmask of gates whose conditional rule may newly fire when bit
        ``g`` is assigned 1 / 0 (value-filtered: only assignments that can
        actually enable the rule enqueue the gate).
    ``I1`` / ``I0``
        union filters — bits with a nonzero ``c1`` / ``c0`` contribution.

    ``lit_no``/``lit_nz`` are the precomputed complements ``~lit_ones`` /
    ``~lit_zeros`` and ``lit_bad[L]`` flags self-contradictory closures
    (``lit_ones[L] & lit_zeros[L] != 0`` — assuming ``L`` is immediately
    absurd).
    """

    __slots__ = (
        "lit_ones",
        "lit_zeros",
        "lit_no",
        "lit_nz",
        "lit_bad",
        "c1",
        "c0",
        "I1",
        "I0",
        "build_s",
    )

    def __init__(self, flat: "FlatCircuit") -> None:
        t0 = time.perf_counter()
        n = flat.num_gates
        kind = flat.kind
        ctrl = flat.ctrl
        nc = flat.nc
        out_ctrl = flat.out_ctrl
        out_nc = flat.out_nc
        fanin_start = flat.fanin_start
        fanin_gates = flat.fanin_gates
        fanout_gates = flat.fanout_gates

        # --- conditional-rule candidate contributions --------------------
        simple2 = [
            kind[g] == K_SIMPLE and fanin_start[g + 1] - fanin_start[g] >= 2
            for g in range(n)
        ]
        c1 = [0] * n
        c0 = [0] * n
        for g in range(n):
            if simple2[g]:
                # output assigned to out_ctrl enables the last-input rule
                if out_ctrl[g] == 1:
                    c1[g] |= 1 << g
                else:
                    c0[g] |= 1 << g
            for h in fanout_gates[g]:
                if simple2[h]:
                    # an input moving to nc[h] brings h closer to firing
                    if nc[h] == 1:
                        c1[g] |= 1 << h
                    else:
                        c0[g] |= 1 << h
        self.c1 = c1
        self.c0 = c0
        I1 = 0
        I0 = 0
        for g in range(n):
            if c1[g]:
                I1 |= 1 << g
            if c0[g]:
                I0 |= 1 << g
        self.I1 = I1
        self.I0 = I0

        # --- unconditional closure per literal, via Tarjan SCC -----------
        NL = 2 * n
        lit_ones = [0] * NL
        lit_zeros = [0] * NL

        def succs(L: int) -> list[int]:
            """Literals directly implied by ``L`` (unconditional rules)."""
            g, v = L >> 1, L & 1
            out = []
            for h in fanout_gates[g]:
                k = kind[h]
                if k == K_WIRE or k == K_PO:
                    out.append(2 * h + v)
                elif k == K_NOT:
                    out.append(2 * h + 1 - v)
                elif k == K_SIMPLE:
                    if v == ctrl[h]:
                        out.append(2 * h + out_ctrl[h])
                    elif fanin_start[h + 1] - fanin_start[h] == 1:
                        out.append(2 * h + out_nc[h])
            k = kind[g]
            lo = fanin_start[g]
            hi = fanin_start[g + 1]
            if k == K_WIRE or k == K_PO:
                out.append(2 * fanin_gates[lo] + v)
            elif k == K_NOT:
                out.append(2 * fanin_gates[lo] + (1 - v))
            elif k == K_SIMPLE:
                if v == out_nc[g]:
                    ncv = nc[g]
                    for i in range(lo, hi):
                        out.append(2 * fanin_gates[i] + ncv)
                elif hi - lo == 1:
                    out.append(2 * fanin_gates[lo] + ctrl[g])
            return out

        index = [-1] * NL
        low = [0] * NL
        on_stack = [False] * NL
        stack: list[int] = []
        counter = 0
        for root in range(NL):
            if index[root] != -1:
                continue
            work = [(root, iter(succs(root)))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if index[w] == -1:
                        index[w] = low[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack[w] = True
                        work.append((w, iter(succs(w))))
                        advanced = True
                        break
                    elif on_stack[w]:
                        if index[w] < low[v]:
                            low[v] = index[w]
                if advanced:
                    continue
                work.pop()
                if work:
                    pv = work[-1][0]
                    if low[v] < low[pv]:
                        low[pv] = low[v]
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        scc.append(w)
                        if w == v:
                            break
                    o = z = 0
                    for L in scc:
                        g2, val = L >> 1, L & 1
                        if val:
                            o |= 1 << g2
                        else:
                            z |= 1 << g2
                    in_scc = set(scc)
                    for L in scc:
                        for s in succs(L):
                            if s not in in_scc:
                                o |= lit_ones[s]
                                z |= lit_zeros[s]
                    for L in scc:
                        lit_ones[L] = o
                        lit_zeros[L] = z
        self.lit_ones = lit_ones
        self.lit_zeros = lit_zeros
        self.lit_no = [~m for m in lit_ones]
        self.lit_nz = [~m for m in lit_zeros]
        self.lit_bad = [bool(lit_ones[L] & lit_zeros[L]) for L in range(NL)]
        self.build_s = time.perf_counter() - t0


class FlatCircuit:
    """Struct-of-arrays form of a frozen :class:`Circuit` (see module doc).

    Built via ``circuit.flat`` (cached per circuit); do not mutate.
    """

    __slots__ = (
        "name",
        "num_gates",
        "num_leads",
        "type_code",
        "kind",
        "ctrl",
        "nc",
        "out_ctrl",
        "out_nc",
        "fanin_start",
        "fanin_gates",
        "lead_dst",
        "lead_pin",
        "fanout_start",
        "fanout_dst",
        "fanout_lead",
        "inputs",
        "outputs",
        "topo",
        "fanin_mask",
        "fanout_gates",
        "build_s",
        "_closures",
    )

    def __init__(self, circuit: "Circuit") -> None:
        t0 = time.perf_counter()
        n = circuit.num_gates
        self.name = circuit.name
        self.num_gates = n
        self.num_leads = circuit.num_leads
        type_code = array("b", bytes(n))
        kind = array("b", bytes(n))
        ctrl = array("b", bytes(n))
        nc = array("b", bytes(n))
        out_ctrl = array("b", bytes(n))
        out_nc = array("b", bytes(n))
        for g in range(n):
            t = circuit.gate_type(g)
            type_code[g] = t
            k = _KIND_OF_TYPE[t]
            kind[g] = k
            if k == K_SIMPLE:
                ctrl[g] = controlling_value(t)
                nc[g] = 1 - ctrl[g]
                out_ctrl[g] = controlled_output(t)
                out_nc[g] = uncontrolled_output(t)
        self.type_code = type_code
        self.kind = kind
        self.ctrl = ctrl
        self.nc = nc
        self.out_ctrl = out_ctrl
        self.out_nc = out_nc

        # fanin CSR == lead table (leads are (dst, pin)-ordered)
        fanin_start = array("q", bytes(8 * (n + 1)))
        fanin_gates = array("q")
        lead_dst = array("q")
        lead_pin = array("q")
        fanin_mask = [0] * n
        for g in range(n):
            srcs = circuit.fanin(g)
            fanin_start[g + 1] = fanin_start[g] + len(srcs)
            fanin_gates.extend(srcs)
            m = 0
            for pin, s in enumerate(srcs):
                lead_dst.append(g)
                lead_pin.append(pin)
                m |= 1 << s
            fanin_mask[g] = m
        self.fanin_start = fanin_start
        self.fanin_gates = fanin_gates
        self.lead_dst = lead_dst
        self.lead_pin = lead_pin
        self.fanin_mask = fanin_mask

        # fanout CSR in Circuit.fanout order (DFS order depends on it)
        fanout_start = array("q", bytes(8 * (n + 1)))
        fanout_dst = array("q")
        fanout_lead = array("q")
        fanout_gates = []
        for g in range(n):
            branches = circuit.fanout(g)
            fanout_start[g + 1] = fanout_start[g] + len(branches)
            for dst, pin in branches:
                fanout_dst.append(dst)
                fanout_lead.append(circuit.lead_index(dst, pin))
            fanout_gates.append(tuple(sorted({d for d, _p in branches})))
        self.fanout_start = fanout_start
        self.fanout_dst = fanout_dst
        self.fanout_lead = fanout_lead
        self.fanout_gates = fanout_gates

        self.inputs = array("q", circuit.inputs)
        self.outputs = array("q", circuit.outputs)
        self.topo = array("q", circuit.topo_order)
        self._closures: LiteralClosures | None = None
        self.build_s = time.perf_counter() - t0

    # -- derived views ----------------------------------------------------

    @property
    def closures(self) -> LiteralClosures:
        """Literal implication closures (built lazily, cached)."""
        clo = self._closures
        if clo is None:
            clo = self._closures = LiteralClosures(self)
        return clo

    @property
    def bitset_words(self) -> int:
        """64-bit words per gate bitset (one bit per gate)."""
        return (self.num_gates + 63) >> 6

    def fanin_count(self, g: int) -> int:
        return self.fanin_start[g + 1] - self.fanin_start[g]

    def fanin_of(self, g: int) -> tuple[int, ...]:
        return tuple(self.fanin_gates[self.fanin_start[g] : self.fanin_start[g + 1]])

    def fanout_of(self, g: int) -> tuple[tuple[int, int], ...]:
        """Fanout branches of ``g`` as ``(lead, dst)`` pairs, DFS order."""
        lo = self.fanout_start[g]
        hi = self.fanout_start[g + 1]
        return tuple(
            (self.fanout_lead[i], self.fanout_dst[i]) for i in range(lo, hi)
        )

    def lead_src(self, lead: int) -> int:
        """Source gate of ``lead`` (the fanin CSR is the lead table)."""
        return self.fanin_gates[lead]

    def gate_type_histogram(self) -> dict[str, int]:
        """Gate counts keyed by :class:`GateType` name, fixed member order."""
        counts = [0] * len(GateType)
        for code in self.type_code:
            counts[code] += 1
        return {t.name: counts[t.value] for t in GateType if counts[t.value]}

    def ir_stats(self) -> dict[str, object]:
        """Summary payload for ``repro-rd info`` and diagnostics."""
        stats: dict[str, object] = {
            "gates": self.num_gates,
            "leads": self.num_leads,
            "bitset_words": self.bitset_words,
            "gate_types": self.gate_type_histogram(),
            "build_s": self.build_s,
        }
        if self._closures is not None:
            stats["closure_build_s"] = self._closures.build_s
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatCircuit({self.name!r}, gates={self.num_gates}, "
            f"leads={self.num_leads}, words={self.bitset_words})"
        )
