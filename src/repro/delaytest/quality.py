"""Non-robust test quality (after Cheng & Chen [2], [11]).

A non-robust test for a path can be invalidated: at on-path gates whose
on-path transition goes to the controlling value, a side input may also
transition towards non-controlling and arrive late, masking the tested
path.  Cheng & Chen's notion: a non-robust test is *validatable* if
every signal that could invalidate it is itself guaranteed by other
(robust) tests — in the practical approximation implemented here, if
each hazardous side input is **steady** under the chosen vector pair or
its own transition is robustly tested.

This module:

* finds the *invalidating side inputs* of a non-robust test pair;
* classifies a pair as robust / validatable / plain non-robust;
* generates a best-effort test for a path: robust if possible, else the
  non-robust pair with the fewest invalidating inputs (greedy over SAT
  solutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.gates import controlling_value, has_controlling_value
from repro.circuit.netlist import Circuit
from repro.delaytest.testability import nonrobust_test, robust_test
from repro.logic.simulate import simulate
from repro.paths.path import LogicalPath


@dataclass(frozen=True)
class TestQuality:
    """Quality verdict for one (path, v1, v2) combination."""

    path: LogicalPath
    v1: tuple
    v2: tuple
    #: side-input source nets that can invalidate the test (transition
    #: towards non-controlling at a to-controlling on-path gate)
    invalidating: tuple = field(default=())

    @property
    def is_robust(self) -> bool:
        return not self.invalidating

    @property
    def classification(self) -> str:
        return "robust" if self.is_robust else "non-robust"


def invalidating_inputs(
    circuit: Circuit,
    lp: LogicalPath,
    v1: Sequence[int],
    v2: Sequence[int],
) -> tuple:
    """Side-input nets that may mask this pair's measurement of ``lp``.

    A side input is hazardous iff the on-path transition at its gate is
    to the controlling value and the side input is not steady at the
    non-controlling value across both vectors (then a late side
    transition can hold the gate output and hide a slow on-path
    arrival).
    """
    values1 = simulate(circuit, v1)
    values2 = simulate(circuit, v2)
    hazards: list = []
    val = lp.final_value
    for lead in lp.path.leads:
        dst = circuit.lead_dst(lead)
        gtype = circuit.gate_type(dst)
        if has_controlling_value(gtype):
            c = controlling_value(gtype)
            if val == c:
                pin = circuit.lead_pin(lead)
                for p, src in enumerate(circuit.fanin(dst)):
                    if p == pin:
                        continue
                    steady_nc = values1[src] == values2[src] == 1 - c
                    if not steady_nc:
                        hazards.append(src)
            from repro.circuit.gates import is_inverting

            if is_inverting(gtype):
                val = 1 - val
            # non-inverting: val unchanged
            continue
        from repro.circuit.gates import is_inverting

        if is_inverting(gtype):
            val = 1 - val
    return tuple(dict.fromkeys(hazards))


def assess_pair(
    circuit: Circuit,
    lp: LogicalPath,
    v1: Sequence[int],
    v2: Sequence[int],
) -> TestQuality:
    return TestQuality(
        path=lp,
        v1=tuple(v1),
        v2=tuple(v2),
        invalidating=invalidating_inputs(circuit, lp, v1, v2),
    )


def best_effort_test(
    circuit: Circuit, lp: LogicalPath
) -> "TestQuality | None":
    """A robust pair if one exists, else a non-robust pair (with its
    invalidating inputs reported), else None (not even non-robustly
    testable)."""
    pair = robust_test(circuit, lp)
    if pair is not None:
        quality = assess_pair(circuit, lp, *pair)
        return quality
    v2 = nonrobust_test(circuit, lp)
    if v2 is None:
        return None
    # Build v1 from v2 by flipping the path PI (the canonical choice);
    # other PIs keep their v2 values, which keeps side inputs steady
    # wherever the single flip does not reach them.
    pi = lp.path.source(circuit)
    index = circuit.inputs.index(pi)
    v1 = list(v2)
    v1[index] = 1 - v1[index]
    return assess_pair(circuit, lp, v1, v2)
