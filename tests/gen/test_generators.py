"""Functional correctness of the benchmark circuit generators."""

import pytest

from repro.gen.adders import (
    carry_lookahead_adder,
    carry_select_adder,
    ripple_carry_adder,
)
from repro.gen.alu import simple_alu
from repro.gen.multiplier import array_multiplier
from repro.gen.mux import decoder, mux_tree
from repro.gen.parity import ecc_encoder, parity_tree
from repro.gen.random_logic import random_dag
from repro.logic.simulate import all_vectors, output_values


def bits_to_int(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestAdders:
    @pytest.mark.parametrize("maker", [
        ripple_carry_adder,
        carry_lookahead_adder,
        lambda w: carry_select_adder(w, block=2),
    ])
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_addition_exhaustive(self, maker, width):
        circuit = maker(width)
        for vector in all_vectors(2 * width + 1):
            a = bits_to_int(vector[0:width])
            b = bits_to_int(vector[width:2 * width])
            cin = vector[2 * width]
            out = output_values(circuit, vector)
            total = bits_to_int(out[:width]) + (out[width] << width)
            assert total == a + b + cin, f"{a}+{b}+{cin}"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)
        with pytest.raises(ValueError):
            carry_lookahead_adder(0)
        with pytest.raises(ValueError):
            carry_select_adder(4, block=0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_multiplication_exhaustive(self, width):
        circuit = array_multiplier(width)
        for vector in all_vectors(2 * width):
            a = bits_to_int(vector[0:width])
            b = bits_to_int(vector[width:2 * width])
            out = output_values(circuit, vector)
            assert bits_to_int(out) == a * b, f"{a}*{b}"

    def test_mult4_spot_checks(self):
        circuit = array_multiplier(4)

        def mult(a, b):
            vec = [(a >> i) & 1 for i in range(4)] + [
                (b >> i) & 1 for i in range(4)
            ]
            return bits_to_int(output_values(circuit, vec))

        assert mult(15, 15) == 225
        assert mult(7, 9) == 63
        assert mult(0, 13) == 0


class TestParity:
    @pytest.mark.parametrize("style", ["sop", "nand"])
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_parity_function(self, style, width):
        circuit = parity_tree(width, style=style)
        for vector in all_vectors(width):
            expected = sum(vector) % 2
            assert output_values(circuit, vector) == (expected,)

    def test_style_validation(self):
        with pytest.raises(ValueError):
            parity_tree(8, style="qm")

    @pytest.mark.parametrize("style", ["sop", "nand"])
    def test_ecc_parity_groups(self, style):
        data_bits = 5
        circuit = ecc_encoder(data_bits, style=style)
        num_parity = len(circuit.outputs) - data_bits
        for vector in all_vectors(data_bits):
            out = output_values(circuit, vector)
            parities = out[:num_parity]
            datas = out[num_parity:]
            assert datas == vector  # data passes through
            for k in range(num_parity):
                members = [
                    vector[i] for i in range(data_bits) if ((i + 1) >> k) & 1
                ]
                assert parities[k] == sum(members) % 2


class TestAlu:
    def test_all_operations(self):
        width = 3
        circuit = simple_alu(width)
        for vector in all_vectors(2 + 2 * width + 1):
            s1, s0 = vector[0], vector[1]
            a = bits_to_int(vector[2:2 + width])
            b = bits_to_int(vector[2 + width:2 + 2 * width])
            cin = vector[-1]
            out = output_values(circuit, vector)
            result = bits_to_int(out[:width])
            cout = out[width]
            op = (s1 << 1) | s0
            if op == 0:
                assert (result, cout) == (a & b, 0)
            elif op == 1:
                assert (result, cout) == (a | b, 0)
            elif op == 2:
                assert (result, cout) == (a ^ b, 0)
            else:
                total = a + b + cin
                assert result == total % (1 << width)
                assert cout == total >> width


class TestMuxAndDecoder:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_mux_tree_selects(self, levels):
        circuit = mux_tree(levels)
        n_data = 1 << levels
        for vector in all_vectors(levels + n_data):
            selects = vector[:levels]
            data = vector[levels:]
            index = sum(s << k for k, s in enumerate(selects))
            assert output_values(circuit, vector) == (data[index],)

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_decoder_one_hot(self, width):
        circuit = decoder(width)
        for vector in all_vectors(width):
            out = output_values(circuit, vector)
            code = sum(v << i for i, v in enumerate(vector))
            assert sum(out) == 1
            assert out[code] == 1


class TestRandomDag:
    def test_deterministic(self):
        a = random_dag(6, 20, seed=5)
        b = random_dag(6, 20, seed=5)
        from repro.circuit.bench import write_bench

        assert write_bench(a) == write_bench(b)

    def test_all_gates_observable(self):
        circuit = random_dag(6, 30, seed=1)
        for g in range(circuit.num_gates):
            from repro.circuit.gates import GateType

            if circuit.gate_type(g) is GateType.PI:
                continue
            assert circuit.reachable_pos(g), (
                f"gate {circuit.gate_name(g)} drives no PO"
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_dag(0, 5)
        with pytest.raises(ValueError):
            random_dag(4, 5, max_fanin=1)
