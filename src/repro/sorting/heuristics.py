"""The paper's input-sort heuristics (Section V).

* **Heuristic 1**: order each gate's inputs by ``|LP_c(l)| = |P(l)|``
  ascending — plain path counting, linear time.
* **Heuristic 2** (Algorithm 3): order by ``|FS_c^sup(l) \\ T_c^sup(l)|``
  ascending, where the two superset sizes come from one FS and one NR
  classification pass with per-lead accumulation.  Non-robustly-testable
  paths are in ``LP(σ^π)`` for *every* π (Lemma 1), so only the
  FS-but-not-NR paths are worth steering away from.

Both heuristics return an :class:`~repro.sorting.input_sort.InputSort`;
``.inverted()`` gives the paper's control experiment (column "Heu2-bar"
of Table I).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.classify.conditions import Criterion
from repro.classify.results import ClassificationResult
from repro.classify.session import CircuitSession
from repro.paths.count import PathCounts, count_paths
from repro.sorting.input_sort import InputSort


def pin_order_sort(circuit: Circuit) -> InputSort:
    """The trivial sort following netlist pin order."""
    return InputSort.pin_order(circuit)


def random_sort(circuit: Circuit, seed: int = 0) -> InputSort:
    """A uniformly random input sort (ablation baseline)."""
    rng = random.Random(seed)
    noise = [rng.random() for _ in range(circuit.num_leads)]
    return InputSort.from_key(circuit, lambda lead: noise[lead])


def heuristic1_sort(
    circuit: Circuit, counts: "PathCounts | None" = None
) -> InputSort:
    """Heuristic 1: rank gate inputs by path count through the lead.

    Pass precomputed ``counts`` (e.g. from a
    :class:`~repro.classify.session.CircuitSession`) to skip the DP.
    """
    if counts is None:
        counts = count_paths(circuit)
    return InputSort.from_key(circuit, lambda lead: counts.through_lead[lead])


@dataclass
class Heuristic2Analysis:
    """Heuristic 2's sort plus the two classification passes that
    computed its cost measure (their runtimes dominate Algorithm 3)."""

    sort: InputSort
    fs_result: ClassificationResult
    nr_result: ClassificationResult

    @property
    def measure(self) -> list[int]:
        """``|FS_c^sup(l)| - |T_c^sup(l)|`` per lead (= the size of the
        set difference, since every NR-accepted path is FS-accepted)."""
        return [
            fs - t
            for fs, t in zip(
                self.fs_result.lead_ctrl_counts, self.nr_result.lead_ctrl_counts
            )
        ]


def heuristic2_analysis(
    circuit: Circuit,
    max_accepted: int | None = None,
    session: "CircuitSession | None" = None,
) -> Heuristic2Analysis:
    """Algorithm 3: the two superset passes plus the induced sort.

    Both passes run through ``session`` (a fresh one when not given), so
    the implication engine and path counts are shared with — and warm
    the caches of — any surrounding pipeline.
    """
    if session is None:
        session = CircuitSession(circuit)
    elif session.circuit is not circuit:
        raise ValueError("session was created for a different circuit")
    fs_result = session.classify(
        Criterion.FS, collect_lead_counts=True, max_accepted=max_accepted
    )
    nr_result = session.classify(
        Criterion.NR, collect_lead_counts=True, max_accepted=max_accepted
    )
    measure = [
        fs - t
        for fs, t in zip(fs_result.lead_ctrl_counts, nr_result.lead_ctrl_counts)
    ]
    sort = InputSort.from_key(circuit, lambda lead: measure[lead])
    session.record_sort("heu2", sort)  # no-op without a persistent store
    return Heuristic2Analysis(sort=sort, fs_result=fs_result, nr_result=nr_result)


def heuristic2_sort(
    circuit: Circuit,
    max_accepted: int | None = None,
    session: "CircuitSession | None" = None,
) -> InputSort:
    """Heuristic 2: rank gate inputs by ``|FS_c^sup \\ T_c^sup|``."""
    return heuristic2_analysis(
        circuit, max_accepted=max_accepted, session=session
    ).sort
