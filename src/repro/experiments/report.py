"""Machine-readable experiment reports (JSON).

The text tables regenerate the paper's layout; these helpers expose the
same measurements as plain dictionaries for downstream tooling
(plotting, regression tracking, CI dashboards).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.experiments.harness import Table1Row, Table3Row
from repro.experiments.supervisor import RowFailure


def _failure_entry(failure: RowFailure) -> dict:
    return {"circuit": failure.label, "failure": failure.to_dict()}


def table1_to_dict(rows: "Iterable[Table1Row | RowFailure]") -> dict:
    return {
        "table": "I",
        "description": "% of logical paths identified robust dependent",
        "rows": [
            _failure_entry(row)
            if isinstance(row, RowFailure)
            else {
                "circuit": row.name,
                "total_logical_paths": row.total_logical,
                "fus_percent": row.fus_percent,
                "heu1_percent": row.heu1_percent,
                "heu2_percent": row.heu2_percent,
                "heu2_inverse_percent": row.heu2_inverse_percent,
                "time_heu1_s": row.time_heu1,
                "time_heu2_s": row.time_heu2,
                "shape_violations": row.check_expected_shape(),
            }
            for row in rows
        ],
    }


def table3_to_dict(rows: "Iterable[Table3Row | RowFailure]") -> dict:
    return {
        "table": "III",
        "description": "approach of [1] vs Heuristic 2",
        "rows": [
            _failure_entry(row)
            if isinstance(row, RowFailure)
            else {
                "circuit": row.name,
                "total_logical_paths": row.total_logical,
                "baseline_rd_percent": row.baseline_percent,
                "baseline_time_s": row.baseline_time,
                "heu2_rd_percent": row.heu2_percent,
                "heu2_time_s": row.heu2_time,
                "quality_gap_percent": row.quality_gap,
                "speedup": row.speedup,
            }
            for row in rows
        ],
    }


def to_json(payload: dict, indent: int = 2) -> str:
    return json.dumps(payload, indent=indent, sort_keys=True)
