"""Store-backed sessions: warm results must equal fresh computation in
every observable way — including on permuted netlists, under
``max_accepted`` aborts, and across the process-pool harness."""

import pytest
from hypothesis import given, settings

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.examples import mux_circuit, paper_example_circuit
from repro.classify.conditions import Criterion
from repro.classify.session import CircuitSession
from repro.errors import ClassifyError
from repro.experiments.harness import run_table1_rows
from repro.gen.suite import get_circuit
from repro.store.db import ResultStore

from tests.strategies import small_circuits


def _shuffled_netlist(circuit, seed: int):
    import random

    lines = write_bench(circuit).splitlines()
    random.Random(seed).shuffle(lines)
    return parse_bench("\n".join(lines), name=circuit.name)


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "s.sqlite") as s:
        yield s


def _snapshot(session, criterion, **kwargs):
    result = session.classify(criterion, **kwargs)
    return (
        result.total_logical,
        result.accepted,
        list(result.lead_ctrl_counts),
    )


class TestWarmEqualsFresh:
    def test_counts_roundtrip(self, store):
        circuit = get_circuit("c17")
        cold = CircuitSession(circuit, store=store)
        fresh = CircuitSession(circuit)
        assert cold.counts.up == fresh.counts.up
        assert cold.counts.down == fresh.counts.down

        warm = CircuitSession(circuit, store=store)
        assert warm.counts.up == fresh.counts.up
        assert warm.counts.down == fresh.counts.down
        assert warm.counts.through_lead == fresh.counts.through_lead
        assert warm.stats.store_hits == 1
        assert warm.stats.store_misses == 0

    @settings(max_examples=15, deadline=None)
    @given(circuit=small_circuits(max_gates=10))
    def test_property_store_vs_fresh(self, tmp_path_factory, circuit):
        """The store-equivalence property of the issue: for random
        circuits, every pass served warm equals a fresh computation."""
        store = ResultStore(
            tmp_path_factory.mktemp("prop") / "s.sqlite"
        )
        try:
            fresh = CircuitSession(circuit)
            cold = CircuitSession(circuit, store=store)
            warm = CircuitSession(circuit, store=store)
            for criterion in (Criterion.FS, Criterion.NR):
                expected = _snapshot(
                    fresh, criterion, collect_lead_counts=True
                )
                assert _snapshot(
                    cold, criterion, collect_lead_counts=True
                ) == expected
                assert _snapshot(
                    warm, criterion, collect_lead_counts=True
                ) == expected
            sort = fresh.heuristic2_sort()
            assert cold.heuristic2_sort().ranks == sort.ranks
            assert warm.heuristic2_sort().ranks == sort.ranks
            assert warm.stats.store_hits > 0
        finally:
            store.close()

    def test_sigma_with_sort_variants(self, store):
        circuit = mux_circuit()
        fresh = CircuitSession(circuit)
        sort = fresh.heuristic1_sort()
        expected = _snapshot(fresh, Criterion.SIGMA_PI, sort=sort)

        cold = CircuitSession(circuit, store=store)
        assert _snapshot(
            cold, Criterion.SIGMA_PI, sort=cold.heuristic1_sort()
        ) == expected
        warm = CircuitSession(circuit, store=store)
        assert _snapshot(
            warm, Criterion.SIGMA_PI, sort=warm.heuristic1_sort()
        ) == expected
        assert warm.stats.count_paths_calls == 0


class TestPermutedNetlists:
    def test_permuted_bench_hits_cache(self, store):
        circuit = get_circuit("c17")
        cold = CircuitSession(circuit, store=store)
        cold.classify(Criterion.FS)
        assert cold.stats.store_hits == 0

        for seed in range(3):
            permuted = _shuffled_netlist(circuit, seed)
            warm = CircuitSession(permuted, store=store)
            result = warm.classify(Criterion.FS)
            assert warm.stats.store_hits > 0
            assert warm.stats.store_misses == 0
            fresh = CircuitSession(permuted).classify(Criterion.FS)
            assert (result.total_logical, result.accepted) == (
                fresh.total_logical,
                fresh.accepted,
            )

    def test_permuted_lead_counts_map_correctly(self, store):
        """Per-lead payloads are stored in canonical lead order; served
        onto a permuted netlist they must match that netlist's own
        fresh computation lead by lead."""
        circuit = paper_example_circuit()
        CircuitSession(circuit, store=store).classify(
            Criterion.FS, collect_lead_counts=True
        )
        permuted = _shuffled_netlist(circuit, 5)
        warm = CircuitSession(permuted, store=store)
        served = warm.classify(Criterion.FS, collect_lead_counts=True)
        fresh = CircuitSession(permuted).classify(
            Criterion.FS, collect_lead_counts=True
        )
        assert warm.stats.store_hits > 0
        assert list(served.lead_ctrl_counts) == list(fresh.lead_ctrl_counts)

    def test_permuted_heuristic_sorts_map_correctly(self, store):
        """A heu2 sort computed on one declaration order and served on
        another must equal the permuted netlist's own heu2 sort."""
        circuit = paper_example_circuit()
        CircuitSession(circuit, store=store).heuristic2_sort()
        permuted = _shuffled_netlist(circuit, 11)
        warm = CircuitSession(permuted, store=store)
        assert (
            warm.heuristic2_sort().ranks
            == CircuitSession(permuted).heuristic2_sort().ranks
        )
        assert warm.stats.store_hits > 0
        assert warm.stats.classify_passes == 0  # no FS/NR passes needed


class TestContracts:
    def test_cached_result_respects_max_accepted(self, store):
        """A warm run with a tighter ``max_accepted`` must abort exactly
        like a cold one — an over-budget cached entry is not served."""
        circuit = mux_circuit()
        cold = CircuitSession(circuit, store=store)
        full = cold.classify(Criterion.FS)
        assert full.accepted > 1
        warm = CircuitSession(circuit, store=store)
        with pytest.raises(ClassifyError):
            warm.classify(Criterion.FS, max_accepted=1)
        # and the abort did not poison the store: full results survive
        again = CircuitSession(circuit, store=store).classify(Criterion.FS)
        assert again.accepted == full.accepted

    def test_on_path_bypasses_store(self, store):
        circuit = mux_circuit()
        CircuitSession(circuit, store=store).classify(Criterion.FS)
        warm = CircuitSession(circuit, store=store)
        paths = []
        warm.classify(Criterion.FS, on_path=paths.append)
        result = warm.classify(Criterion.FS)
        assert len(paths) == result.accepted  # enumeration really ran

    def test_lead_counts_upgrade_entry(self, store):
        """An entry cached without per-lead counts is recomputed (not
        served) for a caller that needs them, then enriched in place."""
        circuit = paper_example_circuit()
        CircuitSession(circuit, store=store).classify(Criterion.FS)
        need = CircuitSession(circuit, store=store)
        served = need.classify(Criterion.FS, collect_lead_counts=True)
        fresh = CircuitSession(circuit).classify(
            Criterion.FS, collect_lead_counts=True
        )
        assert list(served.lead_ctrl_counts) == list(fresh.lead_ctrl_counts)
        enriched = CircuitSession(circuit, store=store)
        assert list(
            enriched.classify(
                Criterion.FS, collect_lead_counts=True
            ).lead_ctrl_counts
        ) == list(fresh.lead_ctrl_counts)
        assert enriched.stats.store_hits > 0

    def test_corrupted_entry_recomputed_not_served(self, store):
        """A structurally-broken payload under the right key must be a
        miss: the session recomputes and the result matches fresh."""
        circuit = mux_circuit()
        session = CircuitSession(circuit, store=store)
        fresh = CircuitSession(circuit)
        store.put(
            session.fingerprint, "counts", "", {"up": [1], "down": "bogus"}
        )
        store.put(
            session.fingerprint,
            "classify",
            "FS|none",
            {"total_logical": "x", "accepted": None},
        )
        assert session.counts.up == fresh.counts.up
        result = session.classify(Criterion.FS)
        assert result.accepted == fresh.classify(Criterion.FS).accepted
        assert session.stats.store_hits == 0
        assert session.stats.store_misses > 0

    def test_version_mismatched_entry_recomputed_not_served(self, store):
        """Entries stamped with another schema version are invisible."""
        import sqlite3 as sql

        from repro.store.fingerprint import SCHEMA_VERSION

        circuit = mux_circuit()
        cold = CircuitSession(circuit, store=store)
        expected = cold.classify(Criterion.FS).accepted
        # re-stamp every row as a different (e.g. older) schema version
        conn = sql.connect(store.path)
        conn.execute("UPDATE entries SET schema=?", (SCHEMA_VERSION + 1,))
        conn.commit()
        conn.close()
        warm = CircuitSession(circuit, store=store)
        assert warm.classify(Criterion.FS).accepted == expected
        assert warm.stats.store_hits == 0
        assert warm.stats.store_misses > 0

    def test_store_accepts_plain_path(self, tmp_path):
        session = CircuitSession(
            mux_circuit(), store=str(tmp_path / "p.sqlite")
        )
        session.classify(Criterion.FS)
        assert isinstance(session.store, ResultStore)


class TestHarnessIntegration:
    def test_jobs2_rows_match_no_store_run(self, store):
        circuits = [paper_example_circuit(), mux_circuit()]
        plain = run_table1_rows(circuits)
        pooled = run_table1_rows(circuits, jobs=2, store=store)
        warm = run_table1_rows(circuits, jobs=2, store=store)
        for a, b, c in zip(plain, pooled, warm):
            assert (a.fus_percent, a.heu1_percent, a.heu2_percent) == (
                b.fus_percent, b.heu1_percent, b.heu2_percent
            ) == (c.fus_percent, c.heu1_percent, c.heu2_percent)
        stats = warm[0].session_stats
        assert stats is not None and stats["store_hits"] > 0
        assert stats["count_paths_calls"] == 0
